// Integration tests for the `codar` CLI driver library: option parsing,
// the device registry, end-to-end QASM-in → verified-QASM-out, and batch
// determinism across thread counts.

#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "codar/cli/device_registry.hpp"
#include "codar/cli/driver.hpp"
#include "codar/cli/options.hpp"
#include "codar/ir/decompose.hpp"
#include "codar/qasm/parser.hpp"
#include "codar/qasm/writer.hpp"
#include "codar/workloads/generators.hpp"

namespace codar::cli {
namespace {

namespace fs = std::filesystem;

fs::path temp_dir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

void write_qasm_file(const fs::path& path, const ir::Circuit& circuit) {
  std::ofstream out(path);
  ASSERT_TRUE(out.is_open()) << path;
  out << qasm::to_qasm(circuit);
}

// -- Options ----------------------------------------------------------------

TEST(CliOptions, ParsesFlagsAndPositionals) {
  const Options opts = parse_args(
      {"--device", "grid:3x3", "--router", "astar", "--initial", "greedy",
       "--threads", "4", "--no-duration", "--window", "25", "a.qasm"});
  EXPECT_EQ(opts.device, "grid:3x3");
  EXPECT_EQ(opts.router, "astar");
  EXPECT_EQ(opts.mapping, "greedy");
  EXPECT_EQ(opts.threads, 4);
  EXPECT_FALSE(opts.codar.duration_aware);
  EXPECT_TRUE(opts.codar.context_aware);
  EXPECT_EQ(opts.codar.front_window, 25);
  ASSERT_EQ(opts.inputs.size(), 1u);
  EXPECT_EQ(opts.inputs.front(), "a.qasm");
}

TEST(CliOptions, RejectsBadInput) {
  EXPECT_THROW(parse_args({}), UsageError);                    // nothing to do
  EXPECT_THROW(parse_args({"--router", "qiskit", "a.qasm"}), UsageError);
  EXPECT_THROW(parse_args({"--threads"}), UsageError);         // missing value
  EXPECT_THROW(parse_args({"--threads", "two", "a.qasm"}), UsageError);
  EXPECT_THROW(parse_args({"--wat", "a.qasm"}), UsageError);
  EXPECT_THROW(parse_args({"a.qasm", "--suite"}), UsageError);  // two modes
  EXPECT_THROW(parse_args({"-o", "x", "a.qasm", "b.qasm"}), UsageError);
}

TEST(CliOptions, SetFlagFillsExtras) {
  const Options opts =
      parse_args({"--set", "beam=8", "--set", "alpha=0.5", "a.qasm"});
  ASSERT_NE(opts.extra("beam"), nullptr);
  EXPECT_EQ(*opts.extra("beam"), "8");
  ASSERT_NE(opts.extra("alpha"), nullptr);
  EXPECT_EQ(*opts.extra("alpha"), "0.5");
  EXPECT_THROW(parse_args({"--set", "beam8", "a.qasm"}), UsageError);
  EXPECT_THROW(parse_args({"--set", "=8", "a.qasm"}), UsageError);
}

TEST(CliOptions, UnknownRouterAndMappingListRegisteredNames) {
  // The error messages come from the registries, so a newly registered
  // pass appears in them without a CLI edit.
  try {
    parse_args({"--router", "qiskit", "a.qasm"});
    FAIL() << "expected UsageError";
  } catch (const UsageError& e) {
    EXPECT_EQ(std::string(e.what()),
              "unknown router 'qiskit' "
              "(expected codar|codar-fid|sabre|astar)");
  }
  try {
    parse_args({"--initial", "wat", "a.qasm"});
    FAIL() << "expected UsageError";
  } catch (const UsageError& e) {
    EXPECT_EQ(std::string(e.what()),
              "unknown initial mapping 'wat' "
              "(expected identity|greedy|sabre)");
  }
}

TEST(CliOptions, ListRoutersAndMappingsFlags) {
  EXPECT_TRUE(parse_args({"--list-routers"}).list_routers);
  EXPECT_TRUE(parse_args({"--list-mappings"}).list_mappings);

  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(run_cli({"--list-routers"}, out, err), 0) << err.str();
  for (const char* name : {"codar", "codar-fid", "sabre", "astar"}) {
    EXPECT_NE(out.str().find(name), std::string::npos) << out.str();
  }

  std::ostringstream out2;
  EXPECT_EQ(run_cli({"--list-mappings"}, out2, err), 0) << err.str();
  for (const char* name : {"identity", "greedy", "sabre"}) {
    EXPECT_NE(out2.str().find(name), std::string::npos) << out2.str();
  }
}

// -- Device registry --------------------------------------------------------

TEST(CliDeviceRegistry, BuildsEveryFixedPreset) {
  EXPECT_EQ(make_device("q16").graph.num_qubits(), 16);
  EXPECT_EQ(make_device("tokyo").graph.num_qubits(), 20);
  EXPECT_EQ(make_device("enfield").graph.num_qubits(), 36);
  EXPECT_EQ(make_device("sycamore").graph.num_qubits(), 54);
  EXPECT_EQ(make_device("yorktown").graph.num_qubits(), 5);
}

TEST(CliDeviceRegistry, BuildsParameterizedSpecs) {
  EXPECT_EQ(make_device("grid:3x4").graph.num_qubits(), 12);
  EXPECT_EQ(make_device("linear:7").graph.num_qubits(), 7);
  EXPECT_EQ(make_device("ring:9").graph.num_qubits(), 9);
  EXPECT_GT(make_device("heavyhex:3").graph.num_qubits(), 9);
  EXPECT_GT(make_device("octagons:2").graph.num_qubits(), 8);
  EXPECT_EQ(make_device("iontrap:6").graph.num_qubits(), 6);
}

TEST(CliDeviceRegistry, RejectsBadSpecs) {
  // UsageError since the move to pipeline::DeviceRegistry — the same type
  // unknown routers and mappings throw.
  EXPECT_THROW(make_device("melbourne"), UsageError);
  EXPECT_THROW(make_device("grid:3"), UsageError);
  EXPECT_THROW(make_device("grid:0x4"), UsageError);
  EXPECT_THROW(make_device("heavyhex:4"), UsageError);
  EXPECT_THROW(make_device("linear:-2"), UsageError);
  EXPECT_THROW(make_device("grid"), UsageError);     // missing parameter
  EXPECT_THROW(make_device("tokyo:3"), UsageError);  // preset with parameter
}

TEST(CliDeviceRegistry, UnknownDeviceListsRegisteredSpecs) {
  // Matching the unknown-router behavior: the message enumerates every
  // registered spec, so a newly registered device appears without edits.
  try {
    make_device("melbourne");
    FAIL() << "expected UsageError";
  } catch (const UsageError& e) {
    EXPECT_EQ(std::string(e.what()),
              "unknown device 'melbourne' (expected "
              "q16|tokyo|enfield|sycamore|yorktown|grid-50x50|grid:RxC|"
              "linear:N|ring:N|heavyhex:D|octagons:N|iontrap:N|"
              "file:PATH.json)");
  }
}

TEST(CliDeviceRegistry, AliasesResolveToTheSameDevice) {
  EXPECT_EQ(make_device("q20").fingerprint(),
            make_device("tokyo").fingerprint());
  EXPECT_EQ(make_device("ibm_q16").fingerprint(),
            make_device("q16").fingerprint());
  EXPECT_EQ(make_device("6x6").fingerprint(),
            make_device("enfield").fingerprint());
}

TEST(CliDeviceRegistry, FileSpecLoadsJsonDeviceDescriptions) {
  const fs::path dir = temp_dir("codar_file_device");
  const fs::path path = dir / "dev.json";
  {
    std::ofstream out(path);
    out << R"({"name": "tiny", "qubits": 3, "edges": [[0, 1], [1, 2]]})";
  }
  const arch::Device device = make_device("file:" + path.string());
  EXPECT_EQ(device.name, "tiny");
  EXPECT_EQ(device.graph.num_qubits(), 3);
  EXPECT_TRUE(device.graph.connected(0, 1));
  EXPECT_THROW(make_device("file:" + (dir / "missing.json").string()),
               std::invalid_argument);
  EXPECT_THROW(make_device("file"), UsageError);  // missing path
}

// -- Single-circuit routing -------------------------------------------------

TEST(CliDriver, RoutedOutputParsesAndVerifies) {
  const arch::Device device = make_device("tokyo");
  Options opts;
  const RouteReport report = route_circuit(
      workloads::cuccaro_adder(4), device, opts, /*keep_qasm=*/true);
  EXPECT_TRUE(report.error.empty()) << report.error;
  EXPECT_TRUE(report.verified);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.gates_out, report.gates_in + report.swaps);
  EXPECT_GE(report.depth_out, report.depth_in);

  // The emitted QASM must round-trip through our own parser and stay
  // hardware-compliant.
  const ir::Circuit reparsed = qasm::parse(report.routed_qasm);
  EXPECT_TRUE(ir::is_two_qubit_lowered(reparsed));
  EXPECT_EQ(reparsed.size(), report.gates_out);
  for (const ir::Gate& g : reparsed.gates()) {
    if (g.num_qubits() == 2) {
      EXPECT_TRUE(device.graph.connected(g.qubit(0), g.qubit(1)))
          << qasm::to_qasm(reparsed);
    }
  }
}

TEST(CliDriver, AllThreeRoutersVerify) {
  const arch::Device device = make_device("q16");
  const ir::Circuit circuit = workloads::qft(6);
  for (const std::string router : {"codar", "sabre", "astar"}) {
    Options opts;
    opts.router = router;
    const RouteReport report =
        route_circuit(circuit, device, opts, /*keep_qasm=*/false);
    EXPECT_TRUE(report.ok()) << router << ": " << report.error;
    EXPECT_TRUE(report.verified) << router;
  }
}

TEST(CliDriver, TimingFieldIsOptIn) {
  const arch::Device device = make_device("q16");
  const ir::Circuit circuit = workloads::qft(6);
  Options opts;
  const RouteReport report =
      route_circuit(circuit, device, opts, /*keep_qasm=*/false);
  // Default JSON carries the deterministic stats only; --timing adds the
  // (nondeterministic) per-route wall time.
  const std::string plain = to_json(report, opts);
  EXPECT_EQ(plain.find("route_us"), std::string::npos) << plain;
  EXPECT_NE(plain.find("\"gates_routed\": "), std::string::npos) << plain;
  EXPECT_NE(plain.find("\"barriers\": 0"), std::string::npos) << plain;
  Options timed = opts;
  timed.timing = true;
  const std::string with_timing = to_json(report, timed);
  EXPECT_NE(with_timing.find("\"route_us\": "), std::string::npos)
      << with_timing;
}

TEST(CliOptions, ParsesTimingFlag) {
  EXPECT_FALSE(parse_args({"a.qasm"}).timing);
  EXPECT_TRUE(parse_args({"--timing", "a.qasm"}).timing);
}

TEST(CliDriver, ReportsOversizedCircuitAsError) {
  Options opts;
  const RouteReport report = route_circuit(
      workloads::ghz(8), make_device("yorktown"), opts, /*keep_qasm=*/false);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.error.find("qubits"), std::string::npos) << report.error;
}

TEST(CliDriver, RunCliEndToEnd) {
  const fs::path dir = temp_dir("codar_cli_single");
  const fs::path input = dir / "bv.qasm";
  write_qasm_file(input, workloads::bernstein_vazirani(5, 0b10110));

  std::ostringstream out;
  std::ostringstream err;
  const int exit_code =
      run_cli({input.string(), "--device", "tokyo"}, out, err);
  EXPECT_EQ(exit_code, 0) << err.str();

  // stdout is the routed program, stderr the JSON stats.
  const ir::Circuit routed = qasm::parse(out.str());
  EXPECT_GT(routed.size(), 0u);
  EXPECT_NE(err.str().find("\"verified\": true"), std::string::npos)
      << err.str();
  EXPECT_NE(err.str().find("\"router\": \"codar\""), std::string::npos);
}

TEST(CliDriver, RunCliReportsParseErrors) {
  const fs::path dir = temp_dir("codar_cli_bad");
  const fs::path input = dir / "bad.qasm";
  std::ofstream(input) << "OPENQASM 2.0;\nqreg q[2];\nnot_a_gate q[0];\n";

  std::ostringstream out;
  std::ostringstream err;
  // A load failure is a per-circuit failure (exit 1, JSON error report),
  // not a usage error (exit 2) — same contract as batch mode.
  EXPECT_EQ(run_cli({input.string()}, out, err), 1);
  EXPECT_NE(err.str().find("\"error\": "), std::string::npos) << err.str();
  EXPECT_NE(err.str().find("\"verified\": false"), std::string::npos);
}

// -- Batch mode -------------------------------------------------------------

std::vector<workloads::BenchmarkSpec> batch_jobs() {
  std::vector<workloads::BenchmarkSpec> jobs;
  jobs.push_back({"ghz10", workloads::ghz(10)});
  jobs.push_back({"qft7", workloads::qft(7)});
  jobs.push_back({"adder3", workloads::cuccaro_adder(3)});
  jobs.push_back({"qaoa10", workloads::qaoa_maxcut(10, 2, 7)});
  jobs.push_back({"random12", workloads::random_circuit(12, 300, 0.4, 11)});
  jobs.push_back({"hidden8", workloads::hidden_shift(8, 0b1011)});
  return jobs;
}

TEST(CliBatch, StatsAreByteIdenticalAcrossThreadCounts) {
  const arch::Device device = make_device("tokyo");
  Options one;
  one.threads = 1;
  Options eight;
  eight.threads = 8;

  const std::string json_one = to_json(run_batch(batch_jobs(), device, one), one);
  const std::string json_eight =
      to_json(run_batch(batch_jobs(), device, eight), eight);
  EXPECT_EQ(json_one, json_eight);
  EXPECT_NE(json_one.find("\"failed\": 0"), std::string::npos) << json_one;
}

TEST(CliBatch, RunCliBatchDirectoryAcrossThreads) {
  const fs::path dir = temp_dir("codar_cli_batch");
  write_qasm_file(dir / "a_ghz.qasm", workloads::ghz(8));
  write_qasm_file(dir / "b_qft.qasm", workloads::qft(6));
  write_qasm_file(dir / "c_adder.qasm", workloads::cuccaro_adder(3));

  auto run_with_threads = [&](const std::string& threads) {
    std::ostringstream out;
    std::ostringstream err;
    const int exit_code =
        run_cli({"--batch", dir.string(), "--device", "q16", "--threads",
                 threads},
                out, err);
    EXPECT_EQ(exit_code, 0) << err.str();
    return out.str();
  };
  const std::string stats_one = run_with_threads("1");
  const std::string stats_eight = run_with_threads("8");
  EXPECT_EQ(stats_one, stats_eight);
  // Directory scan is sorted, so report order is stable by filename.
  EXPECT_LT(stats_one.find("a_ghz"), stats_one.find("b_qft"));
  EXPECT_LT(stats_one.find("b_qft"), stats_one.find("c_adder"));
}

TEST(CliBatch, LoadFailuresKeepTheirSlotAndFailTheRun) {
  const fs::path dir = temp_dir("codar_cli_batch_bad");
  write_qasm_file(dir / "a_ok.qasm", workloads::ghz(4));
  std::ofstream(dir / "b_bad.qasm") << "OPENQASM 2.0;\nqreg q[1;\n";
  write_qasm_file(dir / "c_ok.qasm", workloads::qft(4));

  std::ostringstream out;
  std::ostringstream err;
  const int exit_code = run_cli({"--batch", dir.string(), "--device", "q16"},
                                out, err);
  EXPECT_EQ(exit_code, 1);
  EXPECT_NE(out.str().find("\"failed\": 1"), std::string::npos) << out.str();
  EXPECT_LT(out.str().find("a_ok"), out.str().find("b_bad"));
  EXPECT_LT(out.str().find("b_bad"), out.str().find("c_ok"));
}

}  // namespace
}  // namespace codar::cli

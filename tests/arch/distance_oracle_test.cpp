#include "codar/arch/distance_oracle.hpp"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "codar/arch/device.hpp"

namespace codar::arch {
namespace {

/// Restores the process-wide default policy on scope exit, so tests that
/// override it cannot leak into later tests.
class DefaultPolicyGuard {
 public:
  DefaultPolicyGuard() : saved_(default_distance_policy()) {}
  ~DefaultPolicyGuard() { set_default_distance_policy(saved_); }

 private:
  DistancePolicy saved_;
};

/// Random connected graph: a random spanning tree plus `extra_edges`
/// random chords. Deterministic for a fixed seed.
CouplingGraph random_connected(int n, int extra_edges, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  CouplingGraph g(n);
  for (int v = 1; v < n; ++v) {
    const int u = static_cast<int>(rng() % static_cast<std::uint64_t>(v));
    g.add_edge(u, v);
  }
  int added = 0;
  while (added < extra_edges) {
    const int a = static_cast<int>(rng() % static_cast<std::uint64_t>(n));
    const int b = static_cast<int>(rng() % static_cast<std::uint64_t>(n));
    if (a == b || g.connected(a, b)) continue;
    g.add_edge(a, b);
    ++added;
  }
  return g;
}

/// Two random connected components with no edges between them.
CouplingGraph random_disconnected(int n_left, int n_right,
                                  std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  CouplingGraph g(n_left + n_right);
  for (int v = 1; v < n_left; ++v) {
    g.add_edge(static_cast<int>(rng() % static_cast<std::uint64_t>(v)), v);
  }
  for (int v = 1; v < n_right; ++v) {
    const int u = static_cast<int>(rng() % static_cast<std::uint64_t>(v));
    g.add_edge(n_left + u, n_left + v);
  }
  return g;
}

void expect_all_pairs_equal(const CouplingGraph& g,
                            const DistanceOracle& reference,
                            const DistanceOracle& candidate) {
  const int n = g.num_qubits();
  for (Qubit a = 0; a < n; ++a) {
    for (Qubit b = 0; b < n; ++b) {
      ASSERT_EQ(reference.distance(a, b), candidate.distance(a, b))
          << candidate.name() << " diverges at (" << a << ", " << b << ")";
    }
  }
}

TEST(DistanceOracle, DenseAndOnDemandAgreeOnRandomConnectedGraphs) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const CouplingGraph g = random_connected(60, 40, seed);
    const DenseDistanceOracle dense(g);
    const OnDemandDistanceOracle on_demand(g);
    expect_all_pairs_equal(g, dense, on_demand);
  }
}

TEST(DistanceOracle, DenseAndOnDemandAgreeOnDisconnectedGraphs) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const CouplingGraph g = random_disconnected(25, 15, seed);
    const DenseDistanceOracle dense(g);
    const OnDemandDistanceOracle on_demand(g);
    expect_all_pairs_equal(g, dense, on_demand);
    // Cross-component pairs really are infinite, both ways.
    EXPECT_EQ(dense.distance(0, 39), kInfDistance);
    EXPECT_EQ(on_demand.distance(39, 0), kInfDistance);
  }
}

TEST(DistanceOracle, LandmarkModeStaysExactForDistance) {
  const CouplingGraph g = random_connected(80, 50, 7);
  const DenseDistanceOracle dense(g);
  OnDemandDistanceOracle::Config config;
  config.num_landmarks = 4;
  const OnDemandDistanceOracle landmark(g, config);
  EXPECT_STREQ(landmark.name(), "landmark");
  EXPECT_EQ(landmark.num_landmarks(), 4);
  expect_all_pairs_equal(g, dense, landmark);
}

TEST(DistanceOracle, LandmarkLowerBoundIsAdmissible) {
  const CouplingGraph g = random_connected(50, 30, 11);
  OnDemandDistanceOracle::Config config;
  config.num_landmarks = 6;
  const OnDemandDistanceOracle oracle(g, config);
  for (Qubit a = 0; a < g.num_qubits(); ++a) {
    for (Qubit b = 0; b < g.num_qubits(); ++b) {
      const int bound = oracle.lower_bound(a, b);
      EXPECT_GE(bound, 0);
      EXPECT_LE(bound, oracle.distance(a, b))
          << "inadmissible bound at (" << a << ", " << b << ")";
    }
  }
}

TEST(DistanceOracle, LandmarkLowerBoundExactOnDisconnectedPairs) {
  const CouplingGraph g = random_disconnected(12, 8, 3);
  OnDemandDistanceOracle::Config config;
  config.num_landmarks = 4;
  const OnDemandDistanceOracle oracle(g, config);
  // A landmark sits in one component; the other side is unreachable from
  // it, and exactly-one-infinite must collapse to the exact answer.
  EXPECT_EQ(oracle.lower_bound(0, 19), kInfDistance);
  EXPECT_EQ(oracle.lower_bound(19, 0), kInfDistance);
  // Same-component bounds stay finite and admissible.
  EXPECT_LE(oracle.lower_bound(0, 11), oracle.distance(0, 11));
}

TEST(DistanceOracle, WithoutLandmarksLowerBoundIsExact) {
  const CouplingGraph g = random_connected(30, 10, 13);
  const OnDemandDistanceOracle oracle(g);
  EXPECT_STREQ(oracle.name(), "on-demand");
  EXPECT_EQ(oracle.num_landmarks(), 0);
  for (Qubit a = 0; a < g.num_qubits(); ++a) {
    EXPECT_EQ(oracle.lower_bound(a, 0), oracle.distance(a, 0));
  }
}

TEST(DistanceOracle, LruCacheEvictsUnderTinyBudget) {
  const CouplingGraph g = random_connected(32, 10, 17);
  OnDemandDistanceOracle::Config config;
  // Budget for exactly two rows of 32 ints.
  config.row_cache_bytes = 2 * 32 * sizeof(int);
  const OnDemandDistanceOracle oracle(g, config);

  (void)oracle.distance(0, 1);  // row 0 computed
  (void)oracle.distance(1, 2);  // row 1 computed
  EXPECT_EQ(oracle.rows_cached(), 2u);
  EXPECT_EQ(oracle.row_computations(), 2u);

  (void)oracle.distance(0, 5);  // hit: row 0 still cached
  EXPECT_EQ(oracle.row_computations(), 2u);

  (void)oracle.distance(2, 3);  // evicts LRU victim (row 1)
  EXPECT_EQ(oracle.rows_cached(), 2u);
  EXPECT_EQ(oracle.row_computations(), 3u);

  (void)oracle.distance(1, 4);  // row 1 must be recomputed
  EXPECT_EQ(oracle.row_computations(), 4u);
  EXPECT_EQ(oracle.rows_cached(), 2u);
}

TEST(DistanceOracle, AtLeastOneRowEvenUnderZeroBudget) {
  const CouplingGraph g = random_connected(16, 5, 19);
  OnDemandDistanceOracle::Config config;
  config.row_cache_bytes = 0;
  const OnDemandDistanceOracle oracle(g, config);
  const DenseDistanceOracle dense(g);
  expect_all_pairs_equal(g, dense, oracle);
  EXPECT_EQ(oracle.rows_cached(), 1u);
}

TEST(DistanceOracle, SymmetricQueriesShareOneRow) {
  const CouplingGraph g = random_connected(20, 8, 23);
  const OnDemandDistanceOracle oracle(g);
  // (a, b) and (b, a) normalize to the same BFS source, so the reverse
  // query is a cache hit.
  EXPECT_EQ(oracle.distance(3, 14), oracle.distance(14, 3));
  EXPECT_EQ(oracle.row_computations(), 1u);
}

TEST(DistanceOracle, DenseExposesFlatMatrixAndOnDemandDoesNot) {
  const CouplingGraph g = random_connected(24, 10, 29);
  const DenseDistanceOracle dense(g);
  const OnDemandDistanceOracle on_demand(g);

  ASSERT_NE(dense.dense_matrix(), nullptr);
  EXPECT_EQ(dense.dense_stride(), 24u);
  const int* m = dense.dense_matrix();
  for (Qubit a = 0; a < g.num_qubits(); ++a) {
    for (Qubit b = 0; b < g.num_qubits(); ++b) {
      EXPECT_EQ(m[static_cast<std::size_t>(a) * 24 + b], dense.distance(a, b));
    }
  }
  EXPECT_EQ(on_demand.dense_matrix(), nullptr);
}

TEST(DistanceOracle, FootprintsReflectTheBackend) {
  const CouplingGraph g = random_connected(100, 60, 31);
  const DenseDistanceOracle dense(g);
  EXPECT_GE(dense.footprint_bytes(), 100u * 100u * sizeof(int));

  // A budget of 40 rows (of 100 ints each): the steady-state bound covers
  // CSR plus those rows, and stays below the 100x100 dense matrix.
  OnDemandDistanceOracle::Config config;
  config.row_cache_bytes = 40u * 100u * sizeof(int);
  const OnDemandDistanceOracle on_demand(g, config);
  EXPECT_GE(on_demand.footprint_bytes(), 40u * 100u * sizeof(int));
  EXPECT_LT(on_demand.footprint_bytes(), dense.footprint_bytes());
}

TEST(DistanceOracle, ParsePolicyAcceptsTheFourModes) {
  EXPECT_EQ(parse_distance_policy("auto"), DistancePolicy::kAuto);
  EXPECT_EQ(parse_distance_policy("dense"), DistancePolicy::kDense);
  EXPECT_EQ(parse_distance_policy("on-demand"), DistancePolicy::kOnDemand);
  EXPECT_EQ(parse_distance_policy("landmark"), DistancePolicy::kLandmark);
  EXPECT_THROW(parse_distance_policy("magic"), std::invalid_argument);
  EXPECT_THROW(parse_distance_policy(""), std::invalid_argument);
}

TEST(DistanceOracle, MakeOracleResolvesPolicies) {
  const CouplingGraph small = random_connected(10, 4, 37);
  EXPECT_STREQ(
      make_distance_oracle(small, DistancePolicy::kDense)->name(), "dense");
  EXPECT_STREQ(make_distance_oracle(small, DistancePolicy::kOnDemand)->name(),
               "on-demand");
  EXPECT_STREQ(make_distance_oracle(small, DistancePolicy::kLandmark)->name(),
               "landmark");
  // kAuto: dense below the threshold...
  EXPECT_STREQ(
      make_distance_oracle(small, DistancePolicy::kAuto)->name(), "dense");
  // ...on-demand above it.
  CouplingGraph big(kDenseOracleMaxQubits + 1);
  for (int v = 1; v < big.num_qubits(); ++v) big.add_edge(v - 1, v);
  EXPECT_STREQ(
      make_distance_oracle(big, DistancePolicy::kAuto)->name(), "on-demand");
}

TEST(DistanceOracle, InheritFollowsTheProcessDefault) {
  const DefaultPolicyGuard guard;
  const CouplingGraph g = random_connected(10, 4, 41);
  set_default_distance_policy(DistancePolicy::kOnDemand);
  EXPECT_STREQ(make_distance_oracle(g, DistancePolicy::kInherit)->name(),
               "on-demand");
  set_default_distance_policy(DistancePolicy::kAuto);
  EXPECT_STREQ(
      make_distance_oracle(g, DistancePolicy::kInherit)->name(), "dense");
  // Setting kInherit as the default is normalized back to kAuto.
  set_default_distance_policy(DistancePolicy::kInherit);
  EXPECT_EQ(default_distance_policy(), DistancePolicy::kAuto);
}

TEST(CouplingGraphOracle, PrepareIsIdempotentAndPinsTheBackend) {
  const CouplingGraph g = random_connected(12, 6, 43);
  g.prepare();
  const DistanceOracle* built = &g.oracle();
  g.prepare();
  EXPECT_EQ(&g.oracle(), built);
  EXPECT_GT(g.distance_footprint_bytes(), 0u);
}

TEST(CouplingGraphOracle, CopiesShareThePreparedOracle) {
  const CouplingGraph g = random_connected(12, 6, 47);
  g.prepare();
  const CouplingGraph copy(g);
  EXPECT_EQ(&copy.oracle(), &g.oracle());
  EXPECT_EQ(copy.distance(0, 11), g.distance(0, 11));
}

TEST(CouplingGraphOracle, MutationDetachesTheOracle) {
  CouplingGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_EQ(g.distance(0, 3), kInfDistance);
  g.add_edge(2, 3);  // resets the already-built oracle
  EXPECT_EQ(g.distance(0, 3), 3);
}

TEST(CouplingGraphOracle, PerGraphPolicySelectsTheBackend) {
  CouplingGraph g = random_connected(12, 6, 53);
  const int reference = g.distance(0, 11);

  g.set_distance_policy(DistancePolicy::kOnDemand);
  EXPECT_STREQ(g.oracle().name(), "on-demand");
  EXPECT_EQ(g.distance(0, 11), reference);

  g.set_distance_policy(DistancePolicy::kLandmark);
  EXPECT_STREQ(g.oracle().name(), "landmark");
  EXPECT_EQ(g.distance(0, 11), reference);

  g.set_distance_policy(DistancePolicy::kDense);
  EXPECT_STREQ(g.oracle().name(), "dense");
  EXPECT_EQ(g.distance(0, 11), reference);
}

TEST(CouplingGraphOracle, Grid50x50RoutesThroughOnDemandUnderAuto) {
  const Device dev = grid(50, 50);
  EXPECT_EQ(dev.graph.num_qubits(), 2500);
  dev.graph.prepare();
  EXPECT_STREQ(dev.graph.oracle().name(), "on-demand");
  // Manhattan distance on the lattice: corner to corner is 49 + 49.
  EXPECT_EQ(dev.graph.distance(0, 2499), 98);
  // The footprint stays far below the 25 MB dense matrix would need...
  // unless the row-cache budget dominates; either way it must be bounded.
  EXPECT_GT(dev.graph.distance_footprint_bytes(), 0u);
}

TEST(CouplingGraphOracle, IncidentEdgeIdsMatchNeighbors) {
  const CouplingGraph g = random_connected(20, 12, 59);
  for (Qubit q = 0; q < g.num_qubits(); ++q) {
    const auto& neighbors = g.neighbors(q);
    const auto ids = g.incident_edge_ids(q);
    ASSERT_EQ(ids.size(), neighbors.size());
    for (std::size_t k = 0; k < ids.size(); ++k) {
      const auto& edge = g.edges()[static_cast<std::size_t>(ids[k])];
      const bool matches = (edge.first == q && edge.second == neighbors[k]) ||
                           (edge.second == q && edge.first == neighbors[k]);
      EXPECT_TRUE(matches) << "edge id " << ids[k] << " at qubit " << q;
    }
  }
}

}  // namespace
}  // namespace codar::arch

#include "codar/arch/extra_devices.hpp"

#include <gtest/gtest.h>

namespace codar::arch {
namespace {

TEST(HeavyHex, DistanceThreeShape) {
  const Device d = heavy_hex(3);
  // 3 rows of 5 data qubits + connector rows of 2 and 1 = 18 qubits.
  EXPECT_EQ(d.graph.num_qubits(), 18);
  EXPECT_TRUE(d.graph.is_fully_connected());
  EXPECT_TRUE(d.graph.has_coordinates());
  // Heavy-hex is degree <= 3 everywhere.
  for (ir::Qubit q = 0; q < d.graph.num_qubits(); ++q) {
    EXPECT_LE(d.graph.neighbors(q).size(), 3u) << "qubit " << q;
  }
}

TEST(HeavyHex, LargerDistances) {
  for (const int dist : {5, 7}) {
    const Device d = heavy_hex(dist);
    EXPECT_TRUE(d.graph.is_fully_connected()) << d.name;
    for (ir::Qubit q = 0; q < d.graph.num_qubits(); ++q) {
      EXPECT_LE(d.graph.neighbors(q).size(), 3u);
    }
  }
}

TEST(HeavyHex, RejectsEvenOrTinyDistance) {
  EXPECT_THROW(heavy_hex(2), ContractViolation);
  EXPECT_THROW(heavy_hex(4), ContractViolation);
  EXPECT_THROW(heavy_hex(1), ContractViolation);
}

TEST(RigettiOctagons, SingleRingIsAnOctagon) {
  const Device d = rigetti_octagons(1);
  EXPECT_EQ(d.graph.num_qubits(), 8);
  EXPECT_EQ(d.graph.num_edges(), 8u);
  EXPECT_TRUE(d.graph.is_fully_connected());
  for (ir::Qubit q = 0; q < 8; ++q) {
    EXPECT_EQ(d.graph.neighbors(q).size(), 2u);
  }
  // Opposite corners are 4 hops apart on a ring of 8.
  EXPECT_EQ(d.graph.distance(0, 4), 4);
}

TEST(RigettiOctagons, ChainIsFusedByTwoCouplers) {
  const Device d = rigetti_octagons(3);
  EXPECT_EQ(d.graph.num_qubits(), 24);
  EXPECT_EQ(d.graph.num_edges(), 8u * 3 + 2u * 2);
  EXPECT_TRUE(d.graph.is_fully_connected());
  // The fused qubits have degree 3.
  EXPECT_EQ(d.graph.neighbors(2).size(), 3u);
  EXPECT_EQ(d.graph.neighbors(15).size(), 3u);
}

TEST(IonTrapAllToAll, CompleteGraph) {
  const Device d = ion_trap_all_to_all(6);
  EXPECT_EQ(d.graph.num_qubits(), 6);
  EXPECT_EQ(d.graph.num_edges(), 15u);
  for (ir::Qubit a = 0; a < 6; ++a) {
    for (ir::Qubit b = 0; b < 6; ++b) {
      if (a != b) {
        EXPECT_TRUE(d.graph.connected(a, b));
        EXPECT_EQ(d.graph.distance(a, b), 1);
      }
    }
  }
  // Ion-trap durations: slow 2-qubit gates.
  EXPECT_EQ(d.durations.of(ir::GateKind::kCX), 12);
}

}  // namespace
}  // namespace codar::arch

// CalibrationTable semantics and the Device::duration()/fidelity() query
// API: kind-level fallback, per-qubit/per-edge overrides, the SWAP
// three-CX convention — plus the routing-level guarantees: a calibration
// that restates the kind defaults routes byte-identically, and a
// heterogeneous calibration actually changes routing decisions.

#include "codar/arch/calibration.hpp"

#include <gtest/gtest.h>

#include "codar/arch/device.hpp"
#include "codar/core/codar_router.hpp"
#include "codar/workloads/generators.hpp"

namespace codar::arch {
namespace {

TEST(CalibrationTable, EmptyByDefault) {
  CalibrationTable table;
  EXPECT_TRUE(table.empty());
  EXPECT_FALSE(table.duration_1q(0).has_value());
  EXPECT_FALSE(table.duration_2q(0, 1).has_value());
  EXPECT_FALSE(table.fidelity_readout(3).has_value());
}

TEST(CalibrationTable, StoresAndNormalizesOverrides) {
  CalibrationTable table;
  table.set_duration_1q(2, 3);
  table.set_duration_readout(2, 5);
  table.set_duration_2q(4, 1, 7);  // stored as (1, 4)
  table.set_fidelity_1q(0, 0.99);
  table.set_fidelity_readout(0, 0.9);
  table.set_fidelity_2q(1, 4, 0.95);
  EXPECT_FALSE(table.empty());

  EXPECT_EQ(table.duration_1q(2), 3);
  EXPECT_EQ(table.duration_readout(2), 5);
  // Both endpoint orders address the same coupler.
  EXPECT_EQ(table.duration_2q(1, 4), 7);
  EXPECT_EQ(table.duration_2q(4, 1), 7);
  EXPECT_EQ(table.fidelity_1q(0), 0.99);
  EXPECT_EQ(table.fidelity_readout(0), 0.9);
  EXPECT_EQ(table.fidelity_2q(4, 1), 0.95);
  // Untouched qubits/edges stay default.
  EXPECT_FALSE(table.duration_1q(0).has_value());
  EXPECT_FALSE(table.duration_2q(0, 1).has_value());

  // Setting twice overwrites.
  table.set_duration_1q(2, 9);
  EXPECT_EQ(table.duration_1q(2), 9);
}

TEST(CalibrationTable, RejectsOutOfContractValues) {
  CalibrationTable table;
  EXPECT_THROW(table.set_duration_1q(-1, 1), ContractViolation);
  EXPECT_THROW(table.set_duration_1q(0, -1), ContractViolation);
  EXPECT_THROW(table.set_duration_2q(3, 3, 1), ContractViolation);
  EXPECT_THROW(table.set_fidelity_1q(0, 1.5), ContractViolation);
  EXPECT_THROW(table.set_fidelity_2q(0, 1, -0.1), ContractViolation);
}

TEST(CalibrationTable, RejectsZeroFidelity) {
  // Fidelities live in (0, 1]: zero is out of contract alongside the
  // out-of-range values (the ESP estimator works in log-space, and ln(0)
  // would poison every aggregate it feeds).
  CalibrationTable table;
  EXPECT_THROW(table.set_fidelity_1q(0, 0.0), ContractViolation);
  EXPECT_THROW(table.set_fidelity_readout(0, 0.0), ContractViolation);
  EXPECT_THROW(table.set_fidelity_2q(0, 1, 0.0), ContractViolation);
  // The boundary that *is* legal: arbitrarily small but positive, and 1.
  table.set_fidelity_2q(0, 1, 1e-12);
  table.set_fidelity_1q(0, 1.0);
  EXPECT_EQ(table.fidelity_2q(0, 1), 1e-12);
}

TEST(CalibrationTable, ClearDurationsKeepsFidelities) {
  CalibrationTable table;
  table.set_duration_2q(0, 1, 9);
  table.set_fidelity_2q(0, 1, 0.9);
  table.clear_durations();
  EXPECT_FALSE(table.duration_2q(0, 1).has_value());
  EXPECT_EQ(table.fidelity_2q(0, 1), 0.9);
  EXPECT_FALSE(table.empty());
}

TEST(CalibrationTable, FingerprintIsInsertionOrderIndependent) {
  CalibrationTable a;
  a.set_duration_2q(0, 1, 4);
  a.set_duration_2q(2, 3, 5);
  a.set_fidelity_1q(7, 0.9);
  CalibrationTable b;
  b.set_fidelity_1q(7, 0.9);
  b.set_duration_2q(3, 2, 5);  // reversed endpoints, different order
  b.set_duration_2q(1, 0, 4);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a, b);

  b.set_duration_2q(2, 3, 6);
  EXPECT_NE(a.fingerprint(), b.fingerprint());

  // A duration override and a fidelity override must not alias.
  CalibrationTable dur;
  dur.set_duration_1q(0, 1);
  CalibrationTable fid;
  fid.set_fidelity_1q(0, 1.0);
  EXPECT_NE(dur.fingerprint(), fid.fingerprint());
}

// -- Device::duration / Device::fidelity ------------------------------------

TEST(DeviceQueries, KindDefaultsWithoutCalibration) {
  const Device dev = ibm_q5_yorktown();
  const Qubit q01[] = {0, 1};
  const Qubit q0[] = {0};
  EXPECT_EQ(dev.duration(ir::GateKind::kCX, q01), 2);
  EXPECT_EQ(dev.duration(ir::GateKind::kSwap, q01), 6);
  EXPECT_EQ(dev.duration(ir::GateKind::kH, q0), 1);
  EXPECT_EQ(dev.duration(ir::GateKind::kMeasure, q0), 1);
  EXPECT_EQ(dev.fidelity(ir::GateKind::kCX, q01), 1.0);  // ideal default
}

TEST(DeviceQueries, CalibrationOverridesResolvePerSite) {
  Device dev = ibm_q5_yorktown();
  dev.calibration.set_duration_1q(0, 4);
  dev.calibration.set_duration_readout(1, 8);
  dev.calibration.set_duration_2q(0, 1, 5);
  dev.calibration.set_fidelity_2q(0, 1, 0.9);
  dev.calibration.set_fidelity_1q(2, 0.99);
  dev.calibration.set_fidelity_readout(2, 0.8);

  const Qubit q0[] = {0};
  const Qubit q1[] = {1};
  const Qubit q2[] = {2};
  const Qubit q01[] = {0, 1};
  const Qubit q10[] = {1, 0};
  const Qubit q23[] = {2, 3};

  // 1q unitaries pick up the per-qubit override; other qubits keep the
  // kind default.
  EXPECT_EQ(dev.duration(ir::GateKind::kH, q0), 4);
  EXPECT_EQ(dev.duration(ir::GateKind::kX, q0), 4);
  EXPECT_EQ(dev.duration(ir::GateKind::kH, q1), 1);
  // Readout is separate from 1q gates.
  EXPECT_EQ(dev.duration(ir::GateKind::kMeasure, q1), 8);
  EXPECT_EQ(dev.duration(ir::GateKind::kMeasure, q0), 1);
  // 2q gates resolve per edge, either endpoint order.
  EXPECT_EQ(dev.duration(ir::GateKind::kCX, q01), 5);
  EXPECT_EQ(dev.duration(ir::GateKind::kCZ, q10), 5);
  EXPECT_EQ(dev.duration(ir::GateKind::kCX, q23), 2);
  // SWAP = three CX on the calibrated edge, kind default elsewhere.
  EXPECT_EQ(dev.duration(ir::GateKind::kSwap, q01), 15);
  EXPECT_EQ(dev.duration(ir::GateKind::kSwap, q23), 6);

  EXPECT_DOUBLE_EQ(dev.fidelity(ir::GateKind::kCX, q01), 0.9);
  EXPECT_DOUBLE_EQ(dev.fidelity(ir::GateKind::kSwap, q01), 0.9 * 0.9 * 0.9);
  EXPECT_DOUBLE_EQ(dev.fidelity(ir::GateKind::kH, q2), 0.99);
  EXPECT_DOUBLE_EQ(dev.fidelity(ir::GateKind::kMeasure, q2), 0.8);
  EXPECT_DOUBLE_EQ(dev.fidelity(ir::GateKind::kCX, q23), 1.0);
}

/// Edges with no calibration entry fall back to the kind-level default —
/// including SWAP, whose kind default is already the f³ cube when built
/// through set_all_two_qubit — while calibrated edges resolve to the edge
/// override (cubed for SWAP).
TEST(DeviceQueries, MissingEdgeFallsBackToKindLevelSwapCube) {
  Device dev = ibm_q5_yorktown();
  dev.fidelities.set_all_two_qubit(0.9);
  dev.calibration.set_fidelity_2q(0, 1, 0.8);

  const Qubit q01[] = {0, 1};
  const Qubit q23[] = {2, 3};
  // Calibrated edge: plain override for CX, cube for SWAP.
  EXPECT_DOUBLE_EQ(dev.fidelity(ir::GateKind::kCX, q01), 0.8);
  EXPECT_DOUBLE_EQ(dev.fidelity(ir::GateKind::kSwap, q01),
                   0.8 * 0.8 * 0.8);
  // Missing edge: kind defaults, where SWAP is already the derived cube.
  EXPECT_DOUBLE_EQ(dev.fidelity(ir::GateKind::kCX, q23), 0.9);
  EXPECT_DOUBLE_EQ(dev.fidelity(ir::GateKind::kSwap, q23),
                   0.9 * 0.9 * 0.9);
  // A duration-only entry must not shadow the fidelity fallback (the two
  // tables are independent).
  dev.calibration.set_duration_2q(2, 3, 9);
  EXPECT_DOUBLE_EQ(dev.fidelity(ir::GateKind::kSwap, q23),
                   0.9 * 0.9 * 0.9);
  EXPECT_EQ(dev.duration(ir::GateKind::kSwap, q23), 27);
}

// -- Routing-level guarantees ------------------------------------------------

/// A calibration that restates the kind-level defaults on every site must
/// not change a single routing decision.
TEST(CalibratedRouting, RestatedDefaultsRouteByteIdentically) {
  const Device plain = ibm_q20_tokyo();
  Device restated = ibm_q20_tokyo();
  for (const auto& [a, b] : restated.graph.edges()) {
    restated.calibration.set_duration_2q(
        a, b, restated.durations.of(ir::GateKind::kCX));
  }
  for (Qubit q = 0; q < restated.graph.num_qubits(); ++q) {
    restated.calibration.set_duration_1q(
        q, restated.durations.of(ir::GateKind::kH));
  }
  ASSERT_FALSE(restated.calibration.empty());
  ASSERT_NE(plain.fingerprint(), restated.fingerprint());

  const ir::Circuit circuit = workloads::qft(12);
  const core::RoutingResult a = core::CodarRouter(plain).route(circuit);
  const core::RoutingResult b = core::CodarRouter(restated).route(circuit);
  ASSERT_EQ(a.circuit.size(), b.circuit.size());
  for (std::size_t i = 0; i < a.circuit.size(); ++i) {
    ASSERT_EQ(a.circuit.gate(i), b.circuit.gate(i)) << "gate " << i;
  }
  EXPECT_EQ(a.stats.swaps_inserted, b.stats.swaps_inserted);
  EXPECT_EQ(a.stats.router_makespan, b.stats.router_makespan);
  EXPECT_EQ(a.stats.cycles_simulated, b.stats.cycles_simulated);
}

/// Per-edge durations must actually reach the router's clock: slowing
/// down half the couplers changes the routed output, not just its score.
TEST(CalibratedRouting, HeterogeneousEdgeDurationsChangeRouting) {
  const Device plain = ibm_q20_tokyo();
  Device slow = ibm_q20_tokyo();
  // Every other coupler is 8x slower — an uneven device in the spirit of
  // real backend calibration data.
  bool alternate = false;
  for (const auto& [a, b] : slow.graph.edges()) {
    if ((alternate = !alternate)) slow.calibration.set_duration_2q(a, b, 16);
  }

  const ir::Circuit circuit = workloads::qft(12);
  const core::RoutingResult fast = core::CodarRouter(plain).route(circuit);
  const core::RoutingResult het = core::CodarRouter(slow).route(circuit);

  bool differs = fast.circuit.size() != het.circuit.size() ||
                 fast.stats.router_makespan != het.stats.router_makespan;
  for (std::size_t i = 0;
       !differs && i < fast.circuit.size() && i < het.circuit.size(); ++i) {
    differs = !(fast.circuit.gate(i) == het.circuit.gate(i));
  }
  EXPECT_TRUE(differs)
      << "per-edge durations did not influence routing decisions";

  // The duration-blind ablation must ignore the calibration entirely.
  core::CodarConfig blind;
  blind.duration_aware = false;
  const core::RoutingResult blind_plain =
      core::CodarRouter(plain, blind).route(circuit);
  const core::RoutingResult blind_het =
      core::CodarRouter(slow, blind).route(circuit);
  ASSERT_EQ(blind_plain.circuit.size(), blind_het.circuit.size());
  for (std::size_t i = 0; i < blind_plain.circuit.size(); ++i) {
    ASSERT_EQ(blind_plain.circuit.gate(i), blind_het.circuit.gate(i));
  }
}

}  // namespace
}  // namespace codar::arch

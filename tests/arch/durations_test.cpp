#include "codar/arch/durations.hpp"

#include <gtest/gtest.h>

namespace codar::arch {
namespace {

using ir::GateKind;

TEST(DurationMap, SuperconductingDefaults) {
  const DurationMap m = DurationMap::superconducting();
  EXPECT_EQ(m.of(GateKind::kT), 1);
  EXPECT_EQ(m.of(GateKind::kH), 1);
  EXPECT_EQ(m.of(GateKind::kCX), 2);
  EXPECT_EQ(m.of(GateKind::kCZ), 2);
  EXPECT_EQ(m.of(GateKind::kSwap), 6);
  EXPECT_EQ(m.of(GateKind::kBarrier), 0);
  EXPECT_EQ(m.of(GateKind::kMeasure), 1);
  // These are exactly the paper's motivating-example numbers (Fig. 1b).
}

TEST(DurationMap, IonTrapPreset) {
  const DurationMap m = DurationMap::ion_trap();
  EXPECT_EQ(m.of(GateKind::kRZ), 1);
  EXPECT_EQ(m.of(GateKind::kCX), 12);
  EXPECT_EQ(m.of(GateKind::kSwap), 36);
}

TEST(DurationMap, NeutralAtomPreset) {
  const DurationMap m = DurationMap::neutral_atom();
  // 2-qubit gates are *faster* than 1-qubit gates on neutral atoms.
  EXPECT_LT(m.of(GateKind::kCX), m.of(GateKind::kH));
  EXPECT_EQ(m.of(GateKind::kSwap), 3);
}

TEST(DurationMap, UniformPreset) {
  const DurationMap m = DurationMap::uniform();
  EXPECT_EQ(m.of(GateKind::kH), 1);
  EXPECT_EQ(m.of(GateKind::kCX), 1);
  EXPECT_EQ(m.of(GateKind::kSwap), 3);
}

TEST(DurationMap, SetOverridesSingleKind) {
  DurationMap m;
  m.set(GateKind::kCX, 7);
  EXPECT_EQ(m.of(GateKind::kCX), 7);
  EXPECT_EQ(m.of(GateKind::kCZ), 2);  // untouched
  EXPECT_THROW(m.set(GateKind::kCX, -1), ContractViolation);
}

TEST(DurationMap, BulkSetters) {
  DurationMap m;
  m.set_all_single_qubit(3);
  EXPECT_EQ(m.of(GateKind::kH), 3);
  EXPECT_EQ(m.of(GateKind::kRZ), 3);
  EXPECT_EQ(m.of(GateKind::kMeasure), 1);  // measure is not a unitary 1q gate
  m.set_all_two_qubit(9);
  EXPECT_EQ(m.of(GateKind::kCX), 9);
  EXPECT_EQ(m.of(GateKind::kRZZ), 9);
  EXPECT_EQ(m.of(GateKind::kSwap), 6);  // swap excluded from bulk 2q set
}

TEST(DurationMap, OfGateUsesKind) {
  const DurationMap m;
  EXPECT_EQ(m.of(ir::Gate::cx(0, 1)), 2);
  EXPECT_EQ(m.of(ir::Gate::t(0)), 1);
}

}  // namespace
}  // namespace codar::arch

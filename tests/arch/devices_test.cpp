#include "codar/arch/device.hpp"

#include <gtest/gtest.h>

#include "codar/arch/device_parameters.hpp"

namespace codar::arch {
namespace {

TEST(Devices, IbmQ16Shape) {
  const Device d = ibm_q16();
  EXPECT_EQ(d.graph.num_qubits(), 16);
  // 2x8 lattice: 7 horizontal x2 + 8 vertical.
  EXPECT_EQ(d.graph.num_edges(), 22u);
  EXPECT_TRUE(d.graph.is_fully_connected());
  EXPECT_TRUE(d.graph.has_coordinates());
}

TEST(Devices, IbmQ20TokyoShape) {
  const Device d = ibm_q20_tokyo();
  EXPECT_EQ(d.graph.num_qubits(), 20);
  // 4x5 lattice (4*4 + 3*5 = 31 edges) + 12 diagonals = 43.
  EXPECT_EQ(d.graph.num_edges(), 43u);
  EXPECT_TRUE(d.graph.is_fully_connected());
  // Spot-check the published diagonals.
  EXPECT_TRUE(d.graph.connected(1, 7));
  EXPECT_TRUE(d.graph.connected(8, 12));
  EXPECT_TRUE(d.graph.connected(14, 18));
  EXPECT_FALSE(d.graph.connected(0, 6));
}

TEST(Devices, Enfield6x6Shape) {
  const Device d = enfield_6x6();
  EXPECT_EQ(d.graph.num_qubits(), 36);
  EXPECT_EQ(d.graph.num_edges(), 60u);  // 2 * 6 * 5
  EXPECT_TRUE(d.graph.is_fully_connected());
}

TEST(Devices, Sycamore54Shape) {
  const Device d = google_sycamore54();
  EXPECT_EQ(d.graph.num_qubits(), 54);
  EXPECT_TRUE(d.graph.is_fully_connected());
  EXPECT_TRUE(d.graph.has_coordinates());
  // Degree <= 4 everywhere (square-lattice subgraph).
  for (ir::Qubit q = 0; q < 54; ++q) {
    EXPECT_LE(d.graph.neighbors(q).size(), 4u);
    EXPECT_GE(d.graph.neighbors(q).size(), 1u);
  }
}

TEST(Devices, YorktownBowTie) {
  const Device d = ibm_q5_yorktown();
  EXPECT_EQ(d.graph.num_qubits(), 5);
  EXPECT_EQ(d.graph.num_edges(), 6u);
  EXPECT_TRUE(d.graph.connected(2, 3));
  EXPECT_FALSE(d.graph.connected(0, 4));
}

TEST(Devices, GridGenerator) {
  const Device d = grid(3, 4);
  EXPECT_EQ(d.graph.num_qubits(), 12);
  EXPECT_EQ(d.graph.num_edges(), 17u);  // 3*3 + 2*4
  EXPECT_EQ(d.graph.coordinate(7).row, 1);
  EXPECT_EQ(d.graph.coordinate(7).col, 3);
  EXPECT_EQ(d.graph.distance(0, 11), 5);
}

TEST(Devices, LinearAndRing) {
  const Device lin = linear(5);
  EXPECT_EQ(lin.graph.num_edges(), 4u);
  EXPECT_EQ(lin.graph.distance(0, 4), 4);
  const Device rng = ring(5);
  EXPECT_EQ(rng.graph.num_edges(), 5u);
  EXPECT_EQ(rng.graph.distance(0, 4), 1);
  EXPECT_THROW(ring(2), ContractViolation);
}

TEST(Devices, PaperArchitecturesListAndOrder) {
  const auto archs = paper_architectures();
  ASSERT_EQ(archs.size(), 4u);
  EXPECT_EQ(archs[0].graph.num_qubits(), 16);
  EXPECT_EQ(archs[1].graph.num_qubits(), 36);
  EXPECT_EQ(archs[2].graph.num_qubits(), 20);
  EXPECT_EQ(archs[3].graph.num_qubits(), 54);
}

TEST(DeviceParameters, TableOneSurvey) {
  const auto& params = table1_parameters();
  ASSERT_EQ(params.size(), 6u);
  // Superconducting 2q/1q ratio lands in the 2-4x band the paper uses.
  for (const DeviceParameters& p : params) {
    if (p.technology == "superconducting") {
      const int ratio = duration_ratio_cycles(p);
      EXPECT_GE(ratio, 2) << p.device;
      EXPECT_LE(ratio, 4) << p.device;
    }
  }
  // Ion traps are ~12x; neutral atoms ~1x.
  EXPECT_EQ(duration_ratio_cycles(params[0]), 13);  // 250/20 rounded
  EXPECT_EQ(duration_ratio_cycles(params[5]), 1);
}

// -- Fingerprints -----------------------------------------------------------

TEST(DeviceFingerprint, PinnedValues) {
  // Pinned across runs, platforms and build modes: the serve route cache
  // keys on these, so a silent change would invalidate persisted caches.
  // If a fingerprint-schema change is intentional, bump the version tag
  // and re-pin. (Device schema v2 since PR 5: fidelity map + calibration
  // folded in.)
  const Device tokyo = ibm_q20_tokyo();
  EXPECT_EQ(tokyo.graph.fingerprint(), 0xb9d107e764d6aeb7ull);
  EXPECT_EQ(tokyo.durations.fingerprint(), 0x5e2f25065b076676ull);
  EXPECT_EQ(tokyo.fidelities.fingerprint(), 0x10a4bfa138278efeull);
  EXPECT_EQ(tokyo.fingerprint(), 0xd3c6885709513960ull);
  EXPECT_EQ(ibm_q5_yorktown().fingerprint(), 0x5d39476bbaf326bfull);
}

TEST(DeviceFingerprint, PinnedFidelityMapValues) {
  // FidelityMap::fingerprint feeds Device::fingerprint (and thus the
  // serve cache key); pin the two common tables.
  EXPECT_EQ(FidelityMap().fingerprint(), 0x10a4bfa138278efeull);
  EXPECT_EQ(FidelityMap::superconducting().fingerprint(),
            0x086594f6ba459f22ull);
  EXPECT_NE(FidelityMap::ion_trap().fingerprint(),
            FidelityMap::neutral_atom().fingerprint());
}

TEST(DeviceFingerprint, FidelityAndCalibrationDistinguish) {
  Device plain = linear(4);
  Device measured = linear(4);
  measured.fidelities = FidelityMap::superconducting();
  EXPECT_NE(plain.fingerprint(), measured.fingerprint());

  // A recalibrated device must never alias its homogeneous twin in the
  // serve route cache.
  Device calibrated = linear(4);
  calibrated.calibration.set_duration_2q(1, 2, 5);
  EXPECT_NE(plain.fingerprint(), calibrated.fingerprint());

  Device recalibrated = linear(4);
  recalibrated.calibration.set_duration_2q(1, 2, 7);
  EXPECT_NE(calibrated.fingerprint(), recalibrated.fingerprint());
}

TEST(DeviceFingerprint, IndependentOfEdgeInsertionOrder) {
  CouplingGraph forward(3);
  forward.add_edge(0, 1);
  forward.add_edge(1, 2);
  CouplingGraph backward(3);
  backward.add_edge(2, 1);
  backward.add_edge(1, 0);
  EXPECT_EQ(forward.fingerprint(), backward.fingerprint());
}

TEST(DeviceFingerprint, IgnoresNameButNotStructure) {
  Device a = linear(4);
  Device b = linear(4);
  b.name = "renamed";
  EXPECT_EQ(a.fingerprint(), b.fingerprint());

  // Structure distinguishes: an extra edge, different durations.
  EXPECT_NE(linear(4).fingerprint(), ring(4).fingerprint());
  Device slow = linear(4, DurationMap::ion_trap());
  EXPECT_NE(a.fingerprint(), slow.fingerprint());
}

TEST(DeviceFingerprint, StableAcrossCopies) {
  const Device original = enfield_6x6();
  const Device copy = original;  // different heap allocations
  EXPECT_EQ(original.fingerprint(), copy.fingerprint());
}

}  // namespace
}  // namespace codar::arch

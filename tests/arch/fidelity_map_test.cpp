#include "codar/arch/fidelity_map.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace codar::arch {
namespace {

using ir::GateKind;

TEST(FidelityMap, DefaultIsIdeal) {
  const FidelityMap m;
  for (std::size_t i = 0; i < ir::kGateKindCount; ++i) {
    EXPECT_DOUBLE_EQ(m.of(static_cast<GateKind>(i)), 1.0);
  }
}

TEST(FidelityMap, SettersValidateRange) {
  FidelityMap m;
  EXPECT_THROW(m.set(GateKind::kH, 1.5), ContractViolation);
  EXPECT_THROW(m.set(GateKind::kH, -0.1), ContractViolation);
  m.set(GateKind::kH, 0.99);
  EXPECT_DOUBLE_EQ(m.of(GateKind::kH), 0.99);
  EXPECT_DOUBLE_EQ(m.of(GateKind::kX), 1.0);
}

TEST(FidelityMap, SwapIsCubeOfTwoQubitFidelity) {
  FidelityMap m;
  m.set_all_two_qubit(0.9);
  EXPECT_DOUBLE_EQ(m.of(GateKind::kCX), 0.9);
  EXPECT_NEAR(m.of(GateKind::kSwap), std::pow(0.9, 3.0), 1e-12);
  EXPECT_NEAR(m.of(GateKind::kCCX), std::pow(0.9, 6.0), 1e-12);
}

TEST(FidelityMap, SuperconductingPreset) {
  const FidelityMap m = FidelityMap::superconducting();
  EXPECT_NEAR(m.of(GateKind::kH), 0.9977, 1e-12);
  EXPECT_NEAR(m.of(GateKind::kCX), 0.965, 1e-12);
  EXPECT_NEAR(m.of(GateKind::kMeasure), 0.93, 1e-12);
  // 1q gates are better than 2q gates (Table I).
  EXPECT_GT(m.of(GateKind::kT), m.of(GateKind::kCZ));
}

TEST(FidelityMap, NeutralAtomHasWeakTwoQubitGates) {
  const FidelityMap m = FidelityMap::neutral_atom();
  EXPECT_NEAR(m.of(GateKind::kCX), 0.82, 1e-12);
  EXPECT_GT(m.of(GateKind::kH), 0.9999);
}

TEST(FidelityMap, OfGateDelegatesToKind) {
  const FidelityMap m = FidelityMap::ion_trap();
  EXPECT_DOUBLE_EQ(m.of(ir::Gate::cx(0, 1)), m.of(GateKind::kCX));
}

TEST(FidelityMap, FingerprintPinnedAndContentAddressed) {
  // Pinned across runs, platforms and build modes — Device::fingerprint
  // (and thus the serve route-cache key) folds this in. Bump the schema
  // version and re-pin on an intentional change.
  EXPECT_EQ(FidelityMap().fingerprint(), 0x10a4bfa138278efeull);
  EXPECT_EQ(FidelityMap::superconducting().fingerprint(),
            0x086594f6ba459f22ull);

  // Same content → same fingerprint, regardless of how it was built.
  FidelityMap rebuilt;
  rebuilt.set_all_single_qubit(0.9977);
  rebuilt.set_all_two_qubit(0.965);
  rebuilt.set_measure(0.93);
  EXPECT_EQ(rebuilt.fingerprint(),
            FidelityMap::superconducting().fingerprint());

  // Any single entry distinguishes.
  FidelityMap tweaked = FidelityMap::superconducting();
  tweaked.set(GateKind::kCX, 0.964);
  EXPECT_NE(tweaked.fingerprint(),
            FidelityMap::superconducting().fingerprint());
}

}  // namespace
}  // namespace codar::arch

#include "codar/arch/coupling_graph.hpp"

#include <gtest/gtest.h>

namespace codar::arch {
namespace {

CouplingGraph path4() {
  CouplingGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  return g;
}

TEST(CouplingGraph, EdgesAndAdjacency) {
  const CouplingGraph g = path4();
  EXPECT_EQ(g.num_qubits(), 4);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.connected(0, 1));
  EXPECT_TRUE(g.connected(1, 0));
  EXPECT_FALSE(g.connected(0, 2));
  EXPECT_EQ(g.neighbors(1), (std::vector<ir::Qubit>{0, 2}));
}

TEST(CouplingGraph, RejectsSelfAndDuplicateEdges) {
  CouplingGraph g(3);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(1, 1), ContractViolation);
  EXPECT_THROW(g.add_edge(1, 0), ContractViolation);
  EXPECT_THROW(g.add_edge(0, 5), ContractViolation);
}

TEST(CouplingGraph, BfsDistances) {
  const CouplingGraph g = path4();
  EXPECT_EQ(g.distance(0, 0), 0);
  EXPECT_EQ(g.distance(0, 1), 1);
  EXPECT_EQ(g.distance(0, 3), 3);
  EXPECT_EQ(g.distance(3, 0), 3);
}

TEST(CouplingGraph, DisconnectedPairsAreInfinite) {
  CouplingGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_EQ(g.distance(0, 3), kInfDistance);
  EXPECT_FALSE(g.is_fully_connected());
}

TEST(CouplingGraph, DistanceCacheInvalidatedByNewEdge) {
  CouplingGraph g(3);
  g.add_edge(0, 1);
  EXPECT_EQ(g.distance(0, 2), kInfDistance);
  g.add_edge(1, 2);
  EXPECT_EQ(g.distance(0, 2), 2);
  EXPECT_TRUE(g.is_fully_connected());
}

TEST(CouplingGraph, RingDistanceTakesShorterArc) {
  CouplingGraph g(6);
  for (ir::Qubit q = 0; q < 6; ++q) g.add_edge(q, (q + 1) % 6);
  EXPECT_EQ(g.distance(0, 3), 3);
  EXPECT_EQ(g.distance(0, 5), 1);
  EXPECT_EQ(g.distance(1, 4), 3);
}

TEST(CouplingGraph, CoordinatesRoundTrip) {
  CouplingGraph g(2);
  g.add_edge(0, 1);
  EXPECT_FALSE(g.has_coordinates());
  EXPECT_THROW(g.coordinate(0), ContractViolation);
  g.set_coordinates({{0, 0}, {0, 1}});
  ASSERT_TRUE(g.has_coordinates());
  EXPECT_EQ(g.coordinate(1).col, 1);
  EXPECT_EQ(g.coordinate(1).row, 0);
}

TEST(CouplingGraph, CoordinatesMustCoverAllQubits) {
  CouplingGraph g(3);
  EXPECT_THROW(g.set_coordinates({{0, 0}}), ContractViolation);
}

}  // namespace
}  // namespace codar::arch

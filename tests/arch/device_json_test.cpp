// JSON device descriptions: schema acceptance and strictness, the
// load → serialize → reload fingerprint round-trip, and the guarantee
// that a JSON clone of a preset routes byte-identically to the preset.

#include "codar/arch/device_json.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "codar/core/codar_router.hpp"
#include "codar/workloads/generators.hpp"

namespace codar::arch {
namespace {

TEST(DeviceJson, ParsesMinimalDescription) {
  const Device dev = device_from_json_text(
      R"({"qubits": 3, "edges": [[0, 1], [1, 2]]})");
  EXPECT_EQ(dev.name, "json device");
  EXPECT_EQ(dev.graph.num_qubits(), 3);
  EXPECT_EQ(dev.graph.num_edges(), 2u);
  EXPECT_TRUE(dev.graph.connected(0, 1));
  EXPECT_FALSE(dev.graph.has_coordinates());
  // Defaults: superconducting durations, ideal fidelities, no calibration.
  EXPECT_EQ(dev.durations.of(ir::GateKind::kCX), 2);
  EXPECT_EQ(dev.fidelities.of(ir::GateKind::kCX), 1.0);
  EXPECT_TRUE(dev.calibration.empty());
}

TEST(DeviceJson, ParsesFullDescription) {
  const Device dev = device_from_json_text(R"({
    "name": "bowtie",
    "qubits": 3,
    "edges": [[0, 1], [1, 2]],
    "coordinates": [[0, 0], [0, 1], [0, 2]],
    "durations": {"1q": 2, "2q": 12, "swap": 36, "measure": 3,
                  "kinds": {"h": 1}},
    "fidelities": {"1q": 0.993, "2q": 0.973, "measure": 0.995,
                   "kinds": {"cz": 0.9}},
    "calibration": {
      "qubits": [{"qubit": 1, "duration_1q": 5, "fidelity_readout": 0.9}],
      "edges": [{"edge": [1, 2], "duration_2q": 20, "fidelity_2q": 0.95}]
    }
  })");
  EXPECT_EQ(dev.name, "bowtie");
  EXPECT_TRUE(dev.graph.has_coordinates());
  EXPECT_EQ(dev.graph.coordinate(2).col, 2);
  // Broadcast helpers apply before per-kind overrides.
  EXPECT_EQ(dev.durations.of(ir::GateKind::kX), 2);
  EXPECT_EQ(dev.durations.of(ir::GateKind::kH), 1);
  EXPECT_EQ(dev.durations.of(ir::GateKind::kCX), 12);
  EXPECT_EQ(dev.durations.of(ir::GateKind::kSwap), 36);
  EXPECT_EQ(dev.durations.of(ir::GateKind::kMeasure), 3);
  EXPECT_DOUBLE_EQ(dev.fidelities.of(ir::GateKind::kCX), 0.973);
  EXPECT_DOUBLE_EQ(dev.fidelities.of(ir::GateKind::kCZ), 0.9);
  EXPECT_DOUBLE_EQ(dev.fidelities.of(ir::GateKind::kMeasure), 0.995);
  EXPECT_EQ(dev.calibration.duration_1q(1), 5);
  EXPECT_EQ(dev.calibration.fidelity_readout(1), 0.9);
  EXPECT_EQ(dev.calibration.duration_2q(2, 1), 20);
  EXPECT_EQ(dev.calibration.fidelity_2q(1, 2), 0.95);
}

TEST(DeviceJson, TwoQubitBroadcastDerivesSwapAndToffoli) {
  // Like the fidelity helper's f^3 / f^6: "2q" keeps the three-CX
  // convention for the composites, so an ion-trap-style file without an
  // explicit "swap" cannot end up with SWAP cheaper than one CX.
  const Device dev = device_from_json_text(
      R"({"qubits": 2, "edges": [[0, 1]], "durations": {"2q": 12}})");
  EXPECT_EQ(dev.durations.of(ir::GateKind::kCX), 12);
  EXPECT_EQ(dev.durations.of(ir::GateKind::kSwap), 36);
  EXPECT_EQ(dev.durations.of(ir::GateKind::kCCX), 72);

  // Explicit "swap" / "kinds" still win over the derived values.
  const Device pinned = device_from_json_text(
      R"({"qubits": 2, "edges": [[0, 1]],
          "durations": {"2q": 12, "swap": 20, "kinds": {"ccx": 50}}})");
  EXPECT_EQ(pinned.durations.of(ir::GateKind::kSwap), 20);
  EXPECT_EQ(pinned.durations.of(ir::GateKind::kCCX), 50);
}

TEST(DeviceJson, RejectsMalformedDescriptions) {
  // Syntax error.
  EXPECT_THROW(device_from_json_text("{"), std::invalid_argument);
  // Structural errors — strict schema.
  EXPECT_THROW(device_from_json_text("[]"), std::invalid_argument);
  EXPECT_THROW(device_from_json_text(R"({"edges": []})"),
               std::invalid_argument);  // missing qubits
  EXPECT_THROW(device_from_json_text(R"({"qubits": 2})"),
               std::invalid_argument);  // missing edges
  EXPECT_THROW(device_from_json_text(R"({"qubits": 0, "edges": []})"),
               std::invalid_argument);
  // The qubit cap bounds what a hostile serve request can force the
  // server to allocate (large devices use the bounded on-demand oracle,
  // so the cap is 65536, not the old matrix-bound 4096).
  EXPECT_THROW(
      device_from_json_text(R"({"qubits": 1000000, "edges": []})"),
      std::invalid_argument);
  {
    // A connected 65536-qubit chain parses: the cap admits devices far
    // beyond the old 4096 matrix bound.
    std::string big = R"({"qubits": 65536, "edges": [)";
    for (int q = 0; q + 1 < 65536; ++q) {
      if (q > 0) big += ',';
      big += '[' + std::to_string(q) + ',' + std::to_string(q + 1) + ']';
    }
    big += "]}";
    EXPECT_NO_THROW(device_from_json_text(big));
  }
  EXPECT_THROW(
      device_from_json_text(R"({"qubits": 2, "edges": [[0, 2]]})"),
      std::invalid_argument);  // endpoint out of range
  EXPECT_THROW(
      device_from_json_text(R"({"qubits": 2, "edges": [[1, 1]]})"),
      std::invalid_argument);  // self edge
  EXPECT_THROW(
      device_from_json_text(
          R"({"qubits": 2, "edges": [[0, 1], [1, 0]]})"),
      std::invalid_argument);  // duplicate edge
  EXPECT_THROW(
      device_from_json_text(
          R"({"qubits": 2, "edges": [[0, 1]], "qbits": 3})"),
      std::invalid_argument);  // unknown key
  EXPECT_THROW(
      device_from_json_text(
          R"({"qubits": 2, "edges": [[0, 1]], "edges": [[0, 1]]})"),
      std::invalid_argument);  // duplicate key
  EXPECT_THROW(
      device_from_json_text(
          R"({"qubits": 2, "edges": [[0, 1]],
              "coordinates": [[0, 0]]})"),
      std::invalid_argument);  // coordinate count mismatch
  EXPECT_THROW(
      device_from_json_text(
          R"({"qubits": 2, "edges": [[0, 1]],
              "coordinates": [[4294967296, 0], [0, 1]]})"),
      std::invalid_argument);  // coordinate would truncate through int
  EXPECT_THROW(
      device_from_json_text(
          R"({"qubits": 2, "edges": [[0, 1]],
              "durations": {"kinds": {"warp": 1}}})"),
      std::invalid_argument);  // unknown gate kind
  EXPECT_THROW(
      device_from_json_text(
          R"({"qubits": 2, "edges": [[0, 1]],
              "fidelities": {"2q": 1.5}})"),
      std::invalid_argument);  // fidelity out of range
  EXPECT_THROW(
      device_from_json_text(
          R"({"qubits": 3, "edges": [[0, 1], [0, 2]],
              "calibration": {"edges": [
                {"edge": [1, 2], "duration_2q": 4}]}})"),
      std::invalid_argument);  // calibrated edge is not a coupler
  EXPECT_THROW(
      device_from_json_text(
          R"({"qubits": 2, "edges": [[0, 1]],
              "calibration": {"qubits": [{"qubit": 0}]}})"),
      std::invalid_argument);  // entry without any override
  // Conflicting duplicate calibration entries must not silently
  // last-one-wins ([1, 0] normalizes onto [0, 1]).
  EXPECT_THROW(
      device_from_json_text(
          R"({"qubits": 2, "edges": [[0, 1]],
              "calibration": {"edges": [
                {"edge": [0, 1], "duration_2q": 4},
                {"edge": [1, 0], "duration_2q": 9}]}})"),
      std::invalid_argument);
  EXPECT_THROW(
      device_from_json_text(
          R"({"qubits": 2, "edges": [[0, 1]],
              "calibration": {"qubits": [
                {"qubit": 1, "duration_1q": 2},
                {"qubit": 1, "duration_1q": 3}]}})"),
      std::invalid_argument);
  // Routers require a connected graph; the loader rejects disconnected
  // descriptions with a schema-level message instead of leaking the
  // routers' internal precondition.
  try {
    device_from_json_text(R"({"qubits": 4, "edges": [[0, 1], [2, 3]]})");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("must be connected"),
              std::string::npos)
        << e.what();
  }
}

TEST(DeviceJson, FidelityErrorsNameTheOffendingEntry) {
  // (0, 1] validation with a clear error naming the entry: zero, negative
  // and >1 all reject, and the message says *which* field was bad.
  auto expect_names = [](const char* text, const char* entry) {
    try {
      device_from_json_text(text);
      FAIL() << "expected invalid_argument for " << entry;
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(entry), std::string::npos) << what;
      EXPECT_NE(what.find("(0, 1]"), std::string::npos) << what;
    }
  };
  expect_names(R"({"qubits": 2, "edges": [[0, 1]],
                   "fidelities": {"2q": 0}})",
               "'fidelities.2q'");
  expect_names(R"({"qubits": 2, "edges": [[0, 1]],
                   "fidelities": {"kinds": {"cx": -0.5}}})",
               "'fidelities.kinds.cx'");
  expect_names(R"({"qubits": 2, "edges": [[0, 1]],
                   "calibration": {"qubits": [
                     {"qubit": 0, "fidelity_readout": 0}]}})",
               "'fidelity_readout'");
  expect_names(R"({"qubits": 2, "edges": [[0, 1]],
                   "calibration": {"edges": [
                     {"edge": [0, 1], "fidelity_2q": 1.0001}]}})",
               "'fidelity_2q'");
}

TEST(DeviceJson, ParsesAndRoundTripsCoherence) {
  const Device dev = device_from_json_text(
      R"({"qubits": 2, "edges": [[0, 1]],
          "coherence": {"t1": 8000, "t2": 4500.5}})");
  EXPECT_TRUE(dev.coherence.any_finite());
  EXPECT_DOUBLE_EQ(dev.coherence.t1, 8000.0);
  EXPECT_DOUBLE_EQ(dev.coherence.t2, 4500.5);

  // An omitted channel stays infinite (ideal).
  const Device t2_only = device_from_json_text(
      R"({"qubits": 2, "edges": [[0, 1]], "coherence": {"t2": 500}})");
  EXPECT_TRUE(std::isinf(t2_only.coherence.t1));
  EXPECT_DOUBLE_EQ(t2_only.coherence.t2, 500.0);

  // Canonical round trip, fingerprint included.
  const std::string text = device_to_json(dev);
  const Device reloaded = device_from_json_text(text);
  EXPECT_EQ(reloaded.coherence, dev.coherence);
  EXPECT_EQ(reloaded.fingerprint(), dev.fingerprint());
  EXPECT_EQ(device_to_json(reloaded), text);

  // A finite-coherence device never aliases its ideal twin in the route
  // cache, but an ideal device keeps its historical v2 fingerprint.
  const Device ideal = device_from_json_text(
      R"({"qubits": 2, "edges": [[0, 1]]})");
  EXPECT_NE(dev.fingerprint(), ideal.fingerprint());

  // Validation: non-positive, non-finite and unknown-key coherence.
  EXPECT_THROW(device_from_json_text(
                   R"({"qubits": 2, "edges": [[0, 1]],
                       "coherence": {"t2": 0}})"),
               std::invalid_argument);
  EXPECT_THROW(device_from_json_text(
                   R"({"qubits": 2, "edges": [[0, 1]],
                       "coherence": {"t1": -5}})"),
               std::invalid_argument);
  EXPECT_THROW(device_from_json_text(
                   R"({"qubits": 2, "edges": [[0, 1]],
                       "coherence": {"t3": 10}})"),
               std::invalid_argument);
}

TEST(DeviceJson, RoundTripPreservesFingerprints) {
  // load(serialize(d)) must fingerprint identically — names included —
  // for every paper preset...
  for (const Device& dev : paper_architectures()) {
    const std::string text = device_to_json(dev);
    const Device reloaded = device_from_json_text(text);
    EXPECT_EQ(reloaded.name, dev.name);
    EXPECT_EQ(reloaded.fingerprint(), dev.fingerprint()) << dev.name;
    // ... and the serialization itself must be canonical: a second
    // round trip renders the same bytes.
    EXPECT_EQ(device_to_json(reloaded), text) << dev.name;
  }
}

TEST(DeviceJson, RoundTripPreservesCalibration) {
  Device dev = ibm_q5_yorktown();
  dev.name = "calibrated yorktown";
  dev.fidelities = FidelityMap::superconducting();
  dev.calibration.set_duration_1q(0, 2);
  dev.calibration.set_duration_readout(4, 6);
  dev.calibration.set_duration_2q(2, 3, 9);
  dev.calibration.set_fidelity_1q(1, 0.9987);
  dev.calibration.set_fidelity_readout(1, 0.91);
  dev.calibration.set_fidelity_2q(0, 2, 0.953);

  const std::string text = device_to_json(dev);
  const Device reloaded = device_from_json_text(text);
  EXPECT_EQ(reloaded.fingerprint(), dev.fingerprint());
  EXPECT_EQ(reloaded.calibration, dev.calibration);
  EXPECT_EQ(device_to_json(reloaded), text);
}

TEST(DeviceJson, LoadDeviceFileReadsAndReportsPath) {
  const std::string path =
      testing::TempDir() + "/codar_device_json_test.json";
  {
    std::ofstream out(path);
    out << device_to_json(ibm_q20_tokyo());
  }
  const Device loaded = load_device_file(path);
  EXPECT_EQ(loaded.fingerprint(), ibm_q20_tokyo().fingerprint());
  std::remove(path.c_str());

  try {
    load_device_file(path);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
  }
}

/// The acceptance check of the device-file format: a JSON clone of the
/// tokyo preset is indistinguishable from the preset at the router level.
TEST(DeviceJson, TokyoCloneRoutesByteIdentically) {
  const Device preset = ibm_q20_tokyo();
  const Device clone = device_from_json_text(device_to_json(preset));
  ASSERT_EQ(clone.fingerprint(), preset.fingerprint());

  const ir::Circuit circuit = workloads::qft(14);
  const core::RoutingResult a = core::CodarRouter(preset).route(circuit);
  const core::RoutingResult b = core::CodarRouter(clone).route(circuit);
  ASSERT_EQ(a.circuit.size(), b.circuit.size());
  for (std::size_t i = 0; i < a.circuit.size(); ++i) {
    ASSERT_EQ(a.circuit.gate(i), b.circuit.gate(i)) << "gate " << i;
  }
  EXPECT_EQ(a.stats.swaps_inserted, b.stats.swaps_inserted);
  EXPECT_EQ(a.stats.router_makespan, b.stats.router_makespan);
}

}  // namespace
}  // namespace codar::arch

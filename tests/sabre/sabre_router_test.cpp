#include "codar/sabre/sabre_router.hpp"

#include <gtest/gtest.h>

#include "codar/arch/device.hpp"
#include "codar/schedule/scheduler.hpp"
#include "codar/workloads/generators.hpp"
#include "support/routing_checks.hpp"

namespace codar::sabre {
namespace {

using core::RoutingResult;
using ir::Circuit;
using ir::GateKind;
using testing::expect_routing_valid;
using testing::expect_states_equivalent;

TEST(SabreRouter, HardwareCompliantCircuitPassesThrough) {
  const arch::Device dev = arch::linear(4);
  Circuit c(4);
  c.h(0);
  c.cx(0, 1);
  c.cx(2, 3);
  const SabreRouter router(dev);
  const RoutingResult result = router.route(c);
  EXPECT_EQ(result.stats.swaps_inserted, 0u);
  expect_routing_valid(c, result, dev);
}

TEST(SabreRouter, BarriersNotCountedAsRoutedGates) {
  const arch::Device dev = arch::linear(3);
  Circuit c(3);
  c.h(0);
  const ir::Qubit fence[] = {0, 1};
  c.barrier(fence);
  c.cx(0, 1);
  const RoutingResult result = SabreRouter(dev).route(c);
  EXPECT_EQ(result.stats.barriers, 1u);
  EXPECT_EQ(result.stats.gates_routed, c.size() - 1);
}

TEST(SabreRouter, InsertsSwapsForDistantGate) {
  const arch::Device dev = arch::linear(4);
  Circuit c(4);
  c.cx(0, 3);
  const SabreRouter router(dev);
  const RoutingResult result = router.route(c);
  EXPECT_GE(result.stats.swaps_inserted, 2u);
  expect_routing_valid(c, result, dev);
  expect_states_equivalent(c, result, dev);
}

TEST(SabreRouter, RespectsDependencyOrder) {
  const arch::Device dev = arch::linear(3);
  Circuit c(3);
  c.h(0);
  c.cx(0, 2);
  c.t(0);
  const SabreRouter router(dev);
  const RoutingResult result = router.route(c);
  expect_routing_valid(c, result, dev);
  expect_states_equivalent(c, result, dev);
}

TEST(SabreRouter, RejectsBadInputs) {
  const arch::Device dev = arch::linear(3);
  Circuit toffoli(3);
  toffoli.ccx(0, 1, 2);
  EXPECT_THROW(SabreRouter(dev).route(toffoli), ContractViolation);
  Circuit wide(9);
  wide.h(8);
  EXPECT_THROW(SabreRouter(dev).route(wide), ContractViolation);
}

TEST(SabreRouter, LookaheadAndDecayKnobsWork) {
  const arch::Device dev = arch::ibm_q20_tokyo();
  const Circuit c = workloads::random_circuit(12, 300, 0.5, 77);
  SabreConfig no_lookahead;
  no_lookahead.extended_set_size = 0;
  const RoutingResult plain = SabreRouter(dev, no_lookahead).route(c);
  const RoutingResult full = SabreRouter(dev).route(c);
  expect_routing_valid(c, plain, dev);
  expect_routing_valid(c, full, dev);
}

TEST(SabreRouter, InitialMappingIsInjectiveAndDeterministic) {
  const arch::Device dev = arch::ibm_q20_tokyo();
  const Circuit c = workloads::qft(10);
  const SabreRouter router(dev);
  const layout::Layout a = router.initial_mapping(c, 2, 5);
  const layout::Layout b = router.initial_mapping(c, 2, 5);
  EXPECT_EQ(a, b);
  std::vector<bool> used(20, false);
  for (ir::Qubit q = 0; q < 10; ++q) {
    const ir::Qubit p = a.physical(q);
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 20);
    EXPECT_FALSE(used[static_cast<std::size_t>(p)]);
    used[static_cast<std::size_t>(p)] = true;
  }
}

TEST(SabreRouter, InitialMappingReducesSwapCount) {
  // Reverse-traversal refinement should beat a random layout on average.
  const arch::Device dev = arch::ibm_q20_tokyo();
  const Circuit c = workloads::random_circuit(16, 600, 0.5, 99);
  const SabreRouter router(dev);
  const layout::Layout refined = router.initial_mapping(c, 3, 13);
  const layout::Layout random = layout::random_layout(16, 20, 13);
  const auto swaps_refined = router.route(c, refined).stats.swaps_inserted;
  const auto swaps_random = router.route(c, random).stats.swaps_inserted;
  EXPECT_LE(swaps_refined, swaps_random + swaps_random / 4)
      << "refined mapping should not be much worse than random";
}

TEST(SabreRouter, EmitsOnlyDagFrontGates) {
  // SABRE never reorders non-commuting gates: verified structurally by the
  // CF matcher, which subsumes plain dependency order.
  const arch::Device dev = arch::grid(3, 3);
  const Circuit c = workloads::qft(7);
  const RoutingResult result = SabreRouter(dev).route(c);
  expect_routing_valid(c, result, dev);
  expect_states_equivalent(c, result, dev);
}

struct SabreCase {
  int num_qubits;
  int num_gates;
  std::uint64_t seed;
};

class SabreProperty : public ::testing::TestWithParam<SabreCase> {};

TEST_P(SabreProperty, RandomCircuitsRouteAndVerify) {
  const SabreCase& tc = GetParam();
  const arch::Device dev = arch::grid(3, 3);
  const Circuit c =
      workloads::random_circuit(tc.num_qubits, tc.num_gates, 0.5, tc.seed);
  const RoutingResult result = SabreRouter(dev).route(c);
  expect_routing_valid(c, result, dev);
  expect_states_equivalent(c, result, dev);
}

INSTANTIATE_TEST_SUITE_P(
    RandomCircuits, SabreProperty,
    ::testing::Values(SabreCase{5, 60, 21}, SabreCase{7, 100, 22},
                      SabreCase{9, 160, 23}, SabreCase{9, 240, 24},
                      SabreCase{6, 90, 25}),
    [](const ::testing::TestParamInfo<SabreCase>& param_info) {
      return "q" + std::to_string(param_info.param.num_qubits) + "_g" +
             std::to_string(param_info.param.num_gates) + "_s" +
             std::to_string(param_info.param.seed);
    });

}  // namespace
}  // namespace codar::sabre

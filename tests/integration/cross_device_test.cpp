#include <gtest/gtest.h>

#include "codar/arch/extra_devices.hpp"
#include "codar/core/codar_router.hpp"
#include "codar/ir/inverse.hpp"
#include "codar/ir/peephole.hpp"
#include "codar/sabre/sabre_router.hpp"
#include "codar/schedule/scheduler.hpp"
#include "codar/workloads/generators.hpp"
#include "support/routing_checks.hpp"

namespace codar {
namespace {

using core::CodarRouter;
using core::RoutingResult;
using ir::Circuit;
using testing::expect_routing_valid;
using testing::expect_states_equivalent;

TEST(CrossDevice, HeavyHexRoutesAndVerifies) {
  const arch::Device dev = arch::heavy_hex(3);  // 18 qubits, degree <= 3
  for (const Circuit& c :
       {workloads::qft(9), workloads::random_circuit(12, 400, 0.5, 5),
        workloads::qaoa_maxcut(10, 2, 7)}) {
    const RoutingResult result = CodarRouter(dev).route(c);
    expect_routing_valid(c, result, dev);
  }
}

TEST(CrossDevice, HeavyHexHasHigherRoutingCostThanGrid) {
  // Degree-3 heavy-hex needs at least as many SWAPs as a denser 4x5 grid
  // for the same random workload — a sanity check on connectivity impact.
  const Circuit c = workloads::random_circuit(12, 600, 0.5, 9);
  const arch::Device hex = arch::heavy_hex(3);
  const arch::Device lattice = arch::grid(4, 5);
  const auto swaps_hex =
      CodarRouter(hex).route(c).stats.swaps_inserted;
  const auto swaps_grid =
      CodarRouter(lattice).route(c).stats.swaps_inserted;
  EXPECT_GT(swaps_hex, swaps_grid / 2);  // same order of magnitude
}

TEST(CrossDevice, OctagonChainRoutesAndVerifies) {
  const arch::Device dev = arch::rigetti_octagons(2);  // 16 qubits
  const Circuit c = workloads::random_circuit(10, 300, 0.5, 11);
  const RoutingResult codar_result = CodarRouter(dev).route(c);
  expect_routing_valid(c, codar_result, dev);
  expect_states_equivalent(c, codar_result, dev);
  const sabre::SabreRouter sabre(dev);
  const RoutingResult sabre_result = sabre.route(c);
  expect_routing_valid(c, sabre_result, dev);
}

TEST(CrossDevice, AllToAllNeedsNoSwaps) {
  const arch::Device dev = arch::ion_trap_all_to_all(8);
  for (const Circuit& c :
       {workloads::qft(8), workloads::random_circuit(8, 500, 0.6, 3)}) {
    const RoutingResult result = CodarRouter(dev).route(c);
    EXPECT_EQ(result.stats.swaps_inserted, 0u) << c.name();
    expect_routing_valid(c, result, dev);
    EXPECT_EQ(result.final, result.initial);
  }
}

TEST(CrossDevice, AllToAllWeightedDepthTracksInputSchedule) {
  // With no SWAPs, the routed circuit is a commutation-respecting
  // reordering of the input, so its weighted depth stays within a few
  // percent of the input's own ASAP depth (reordering commuting gates can
  // shift the greedy schedule slightly in either direction).
  const arch::Device dev = arch::ion_trap_all_to_all(6);
  const Circuit c = workloads::qft(6);
  const RoutingResult result = CodarRouter(dev).route(c);
  const auto routed = schedule::weighted_depth(result.circuit, dev.durations);
  const auto original = schedule::weighted_depth(c, dev.durations);
  EXPECT_LE(routed, original + original / 10);
  EXPECT_GE(routed, original - original / 10);
}

TEST(CrossDevice, PeepholeBeforeRoutingNeverBreaksEquivalence) {
  const arch::Device dev = arch::grid(3, 3);
  const Circuit raw = workloads::random_circuit(8, 200, 0.4, 21);
  const Circuit optimized = ir::peephole_optimize(raw);
  const RoutingResult result = CodarRouter(dev).route(optimized);
  expect_routing_valid(optimized, result, dev);
  // Raw and optimized agree, so the routed circuit must match raw's state
  // through the final-layout reference.
  expect_states_equivalent(optimized, result, dev);
}

TEST(CrossDevice, MirrorCircuitSurvivesRoutingOnHeavyHex) {
  // Mirror benchmarking end-to-end: route C·C⁻¹, then the routed circuit
  // must still return every logical qubit to |0> (up to the final
  // permutation, which expect_states_equivalent accounts for).
  const arch::Device dev = arch::heavy_hex(3);
  const Circuit m = ir::mirror(workloads::random_circuit(9, 120, 0.5, 31));
  const RoutingResult result = CodarRouter(dev).route(m);
  expect_routing_valid(m, result, dev);

  sim::Statevector psi(dev.graph.num_qubits());
  psi.apply(result.circuit);
  EXPECT_NEAR(std::abs(psi.amp(0)), 1.0, 1e-9);
}

TEST(CrossDevice, SameCircuitAcrossAllModeledArchitectures) {
  const Circuit c = workloads::bernstein_vazirani(9, 0b101101101);
  std::vector<arch::Device> devices = arch::paper_architectures();
  devices.push_back(arch::heavy_hex(3));
  devices.push_back(arch::rigetti_octagons(2));
  devices.push_back(arch::ion_trap_all_to_all(10));
  for (const arch::Device& dev : devices) {
    ASSERT_LE(c.num_qubits(), dev.graph.num_qubits()) << dev.name;
    const RoutingResult result = CodarRouter(dev).route(c);
    expect_routing_valid(c, result, dev);
  }
}

}  // namespace
}  // namespace codar

// Distance-backend equivalence at full pipeline scale: the 71-benchmark
// suite must route byte-identically whether distances come from the dense
// all-pairs matrix (the kAuto choice on paper-scale devices) or from the
// on-demand CSR/BFS oracle that large devices use. BFS hop counts are
// unique, so the backends return the same values and every downstream
// decision — SABRE initial mapping, CODAR swap selection, scheduling —
// must be bit-for-bit reproducible. This is the regression net that keeps
// BENCH_router.json valid for every backend.

#include <gtest/gtest.h>

#include "codar/arch/device.hpp"
#include "codar/arch/distance_oracle.hpp"
#include "codar/core/codar_router.hpp"
#include "codar/qasm/writer.hpp"
#include "codar/sabre/sabre_router.hpp"
#include "codar/workloads/suite.hpp"

namespace codar {
namespace {

struct RoutedSuite {
  std::vector<core::RoutingResult> results;
  std::vector<layout::Layout> initial_layouts;
};

/// Maps and routes the whole suite on enfield_6x6 under one distance
/// policy (the throughput bench's configuration: SABRE mapping rounds=2
/// seed=17, default CODAR config).
RoutedSuite route_suite(arch::DistancePolicy policy) {
  arch::Device device = arch::enfield_6x6();
  device.graph.set_distance_policy(policy);
  device.graph.prepare();

  const core::CodarRouter router(device);
  const sabre::SabreRouter mapper(device);

  RoutedSuite routed;
  for (const workloads::BenchmarkSpec& spec : workloads::benchmark_suite()) {
    layout::Layout initial =
        mapper.initial_mapping(spec.circuit, /*rounds=*/2, /*seed=*/17);
    routed.results.push_back(router.route(spec.circuit, initial));
    routed.initial_layouts.push_back(std::move(initial));
  }
  return routed;
}

void expect_identical(const RoutedSuite& dense, const RoutedSuite& other,
                      const char* label) {
  const auto suite = workloads::benchmark_suite();
  ASSERT_EQ(dense.results.size(), suite.size());
  ASSERT_EQ(other.results.size(), suite.size());
  for (std::size_t i = 0; i < suite.size(); ++i) {
    SCOPED_TRACE(suite[i].name + " under " + label);
    EXPECT_EQ(dense.initial_layouts[i], other.initial_layouts[i]);
    const core::RoutingResult& a = dense.results[i];
    const core::RoutingResult& b = other.results[i];
    EXPECT_EQ(a.stats.swaps_inserted, b.stats.swaps_inserted);
    EXPECT_EQ(a.stats.router_makespan, b.stats.router_makespan);
    EXPECT_EQ(a.stats.cycles_simulated, b.stats.cycles_simulated);
    EXPECT_EQ(a.final, b.final);
    ASSERT_EQ(a.circuit.size(), b.circuit.size());
    for (std::size_t k = 0; k < a.circuit.size(); ++k) {
      ASSERT_EQ(a.circuit.gate(k), b.circuit.gate(k))
          << "first divergence at output position " << k;
    }
    EXPECT_EQ(qasm::to_qasm(a.circuit), qasm::to_qasm(b.circuit));
  }
}

TEST(OracleEquivalence, SuiteRoutesByteIdenticallyUnderOnDemand) {
  const RoutedSuite dense = route_suite(arch::DistancePolicy::kDense);
  const RoutedSuite on_demand = route_suite(arch::DistancePolicy::kOnDemand);
  expect_identical(dense, on_demand, "on-demand");
}

TEST(OracleEquivalence, SuiteRoutesByteIdenticallyUnderLandmark) {
  const RoutedSuite dense = route_suite(arch::DistancePolicy::kDense);
  const RoutedSuite landmark = route_suite(arch::DistancePolicy::kLandmark);
  expect_identical(dense, landmark, "landmark");
}

}  // namespace
}  // namespace codar

#include <gtest/gtest.h>

#include "codar/arch/device.hpp"
#include "codar/core/codar_router.hpp"
#include "codar/ir/decompose.hpp"
#include "codar/sabre/sabre_router.hpp"
#include "codar/schedule/scheduler.hpp"
#include "codar/sim/noisy_simulator.hpp"
#include "codar/workloads/generators.hpp"
#include "codar/workloads/suite.hpp"
#include "support/routing_checks.hpp"

namespace codar {
namespace {

using core::CodarRouter;
using core::RoutingResult;
using ir::Circuit;
using sabre::SabreRouter;
using testing::expect_routing_valid;
using testing::expect_states_equivalent;

/// Both routers on a (device, workload) pair, sharing a SABRE-style
/// initial mapping as the paper prescribes.
struct PipelineCase {
  const char* device;
  const char* workload;
};

arch::Device make_device(const std::string& name) {
  if (name == "q16") return arch::ibm_q16();
  if (name == "tokyo") return arch::ibm_q20_tokyo();
  if (name == "grid3x3") return arch::grid(3, 3);
  if (name == "grid4x4") return arch::grid(4, 4);
  if (name == "yorktown") return arch::ibm_q5_yorktown();
  throw std::runtime_error("unknown device");
}

Circuit make_workload(const std::string& name) {
  using namespace workloads;
  if (name == "qft8") return qft(8);
  if (name == "qft5") return qft(5);
  if (name == "bv7") return bernstein_vazirani(7, 0b1011011);
  if (name == "ghz9") return ghz(9);
  if (name == "wstate5") return w_state(5);
  if (name == "adder3") return ir::decompose_toffoli(cuccaro_adder(3));
  if (name == "draper4") return draper_adder(4);
  if (name == "grover4") return ir::decompose_toffoli(grover(4, 1));
  if (name == "qaoa8") return qaoa_maxcut(8, 2, 3);
  if (name == "random9") return random_circuit(9, 200, 0.5, 17);
  throw std::runtime_error("unknown workload");
}

class RoutingPipeline : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(RoutingPipeline, BothRoutersProduceFaithfulCircuits) {
  const arch::Device dev = make_device(GetParam().device);
  const Circuit circuit = make_workload(GetParam().workload);
  ASSERT_LE(circuit.num_qubits(), dev.graph.num_qubits());

  const SabreRouter sabre(dev);
  const layout::Layout initial = sabre.initial_mapping(circuit, 2, 7);

  const RoutingResult codar_result = CodarRouter(dev).route(circuit, initial);
  const RoutingResult sabre_result = sabre.route(circuit, initial);

  expect_routing_valid(circuit, codar_result, dev);
  expect_routing_valid(circuit, sabre_result, dev);
  if (dev.graph.num_qubits() <= 16) {
    expect_states_equivalent(circuit, codar_result, dev);
    expect_states_equivalent(circuit, sabre_result, dev);
  }

  // Both must retire every original gate.
  EXPECT_EQ(codar_result.circuit.size(),
            circuit.size() + codar_result.stats.swaps_inserted);
  EXPECT_EQ(sabre_result.circuit.size(),
            circuit.size() + sabre_result.stats.swaps_inserted);
}

INSTANTIATE_TEST_SUITE_P(
    DeviceWorkloadMatrix, RoutingPipeline,
    ::testing::Values(PipelineCase{"q16", "qft8"},
                      PipelineCase{"q16", "bv7"},
                      PipelineCase{"q16", "adder3"},
                      PipelineCase{"tokyo", "ghz9"},
                      PipelineCase{"tokyo", "qaoa8"},
                      PipelineCase{"tokyo", "draper4"},
                      PipelineCase{"grid4x4", "random9"},
                      PipelineCase{"grid4x4", "grover4"},
                      PipelineCase{"grid3x3", "qft5"},
                      PipelineCase{"grid3x3", "wstate5"},
                      PipelineCase{"yorktown", "qft5"},
                      PipelineCase{"yorktown", "wstate5"}),
    [](const ::testing::TestParamInfo<PipelineCase>& param_info) {
      return std::string(param_info.param.device) + "_" + param_info.param.workload;
    });

TEST(HeadlineShape, CodarBeatsOrMatchesSabreOnAverage) {
  // A miniature of Fig. 8: across a handful of benchmarks on IBM Q20,
  // CODAR's weighted depth should win on average (individual benchmarks
  // may tie or lose slightly, as in the paper's per-benchmark scatter).
  const arch::Device dev = arch::ibm_q20_tokyo();
  const std::vector<Circuit> circuits = {
      workloads::qft(10), workloads::bernstein_vazirani(12, 0xABC),
      workloads::draper_adder(5),
      workloads::random_circuit(14, 500, 0.5, 55),
      workloads::qaoa_maxcut(12, 2, 5)};
  const SabreRouter sabre(dev);
  const CodarRouter codar(dev);
  double ratio_sum = 0.0;
  for (const Circuit& c : circuits) {
    const layout::Layout initial = sabre.initial_mapping(c, 2, 9);
    const auto d_codar = schedule::weighted_depth(
        codar.route(c, initial).circuit, dev.durations);
    const auto d_sabre = schedule::weighted_depth(
        sabre.route(c, initial).circuit, dev.durations);
    ASSERT_GT(d_codar, 0);
    ratio_sum += static_cast<double>(d_sabre) / static_cast<double>(d_codar);
  }
  const double avg_speedup = ratio_sum / static_cast<double>(circuits.size());
  EXPECT_GT(avg_speedup, 1.0);
}

TEST(FidelityShape, ShorterScheduleGivesBetterDephasingFidelity) {
  // Miniature of Fig. 9: route one algorithm both ways on a 3x3 lattice and
  // compare noisy fidelity under dephasing-dominant noise. The router with
  // the shorter weighted depth must not lose fidelity.
  const arch::Device dev = arch::grid(3, 3);
  const Circuit circuit = workloads::qft(5);
  const SabreRouter sabre(dev);
  const layout::Layout initial = sabre.initial_mapping(circuit, 2, 3);
  const RoutingResult codar_result = CodarRouter(dev).route(circuit, initial);
  const RoutingResult sabre_result = sabre.route(circuit, initial);

  const sim::NoiseParams noise = sim::NoiseParams::dephasing_dominant(400.0);
  const double f_codar = sim::noisy_fidelity_density(
      codar_result.circuit, 9, dev.durations, noise);
  const double f_sabre = sim::noisy_fidelity_density(
      sabre_result.circuit, 9, dev.durations, noise);
  const auto d_codar =
      schedule::weighted_depth(codar_result.circuit, dev.durations);
  const auto d_sabre =
      schedule::weighted_depth(sabre_result.circuit, dev.durations);
  if (d_codar < d_sabre) {
    EXPECT_GT(f_codar, f_sabre - 0.02);
  }
  EXPECT_GT(f_codar, 0.2);
  EXPECT_LE(f_codar, 1.0 + 1e-9);
}

TEST(SuiteSmoke, SmallSuiteEntriesRouteOnQ16) {
  // Route every suite entry that fits a 16-qubit device and has a modest
  // gate count; verify structural faithfulness for each.
  const arch::Device dev = arch::ibm_q16();
  const CodarRouter codar(dev);
  int routed = 0;
  for (const workloads::BenchmarkSpec& spec : workloads::benchmark_suite()) {
    if (spec.circuit.num_qubits() > 16 || spec.circuit.size() > 800) continue;
    const RoutingResult result = codar.route(spec.circuit);
    expect_routing_valid(spec.circuit, result, dev);
    ++routed;
  }
  EXPECT_GE(routed, 40);
}

}  // namespace
}  // namespace codar

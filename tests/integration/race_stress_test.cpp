// Race-stress suite: hammers every concurrency surface the serve path is
// built on, so the TSan lane (-DCODAR_SANITIZE=thread) has real contention
// to bite into — and the normal lanes get the same coverage as plain
// functional tests. Each test encodes an invariant, not a timing:
//
//  - RouteCache single-flight: a storm of identical requests routes once;
//    counters stay exact under eviction churn; no cross-key bleed.
//  - CouplingGraph's lazy oracle build: N threads hitting an unbuilt
//    shared graph build exactly one oracle and read identical distances.
//  - The shared on-demand oracle row-LRU: graph copies share one oracle;
//    concurrent queries through every copy (with eviction churn forced by
//    a tiny row budget) stay byte-identical to the dense backend.
//  - codar serve end to end: worker storms over identical + distinct
//    requests (single-flight + cache), and concurrent inline-device
//    requests exercising the fingerprint-keyed device memo.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "codar/arch/device.hpp"
#include "codar/arch/device_json.hpp"
#include "codar/arch/distance_oracle.hpp"
#include "codar/service/json.hpp"
#include "codar/service/route_cache.hpp"
#include "codar/service/server.hpp"
#include "codar/workloads/suite.hpp"

namespace codar {
namespace {

/// Runs `fn(thread_index)` on `threads` threads, released together to
/// maximize interleaving, and joins them all.
void run_threads(int threads, const std::function<void(int)>& fn) {
  std::atomic<bool> go{false};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      fn(t);
    });
  }
  go.store(true, std::memory_order_release);
  for (std::thread& t : pool) t.join();
}

// ---------------------------------------------------------------------------
// RouteCache

service::CacheKey key_for(std::uint64_t i) {
  return service::CacheKey{i, 7, 13};
}

cli::RouteReport report_for(std::uint64_t i) {
  cli::RouteReport report;
  report.name = "key_" + std::to_string(i);
  return report;
}

TEST(RaceStress, RouteCacheSingleFlightStormRoutesEachKeyOnce) {
  service::RouteCache cache(/*byte_budget=*/64u << 20, /*num_shards=*/4);
  constexpr int kThreads = 8;
  constexpr int kIterations = 25;
  constexpr std::uint64_t kKeys = 5;
  std::atomic<std::uint64_t> routes{0};

  run_threads(kThreads, [&](int t) {
    for (int i = 0; i < kIterations; ++i) {
      // Every thread sweeps the same small key set, so each key sees
      // concurrent identical requests (the single-flight case) on every
      // sweep. The slow route widens the in-flight window.
      const std::uint64_t k =
          static_cast<std::uint64_t>((i + t) % static_cast<int>(kKeys));
      bool hit = false;
      const cli::RouteReport report = cache.get_or_route(
          key_for(k),
          [&] {
            ++routes;
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            return report_for(k);
          },
          &hit);
      // No cross-key bleed: the report always matches the requested key.
      EXPECT_EQ(report.name, "key_" + std::to_string(k));
    }
  });

  // Memoization + single-flight: each key routed exactly once across all
  // threads and iterations.
  EXPECT_EQ(routes.load(), kKeys);
  const service::CacheCounters counters = cache.counters();
  EXPECT_EQ(counters.misses, kKeys);
  EXPECT_EQ(counters.hits() + counters.misses,
            static_cast<std::size_t>(kThreads) * kIterations);
  EXPECT_EQ(counters.entries, kKeys);
  EXPECT_EQ(counters.evictions, 0u);
}

TEST(RaceStress, RouteCacheStaysConsistentUnderEvictionChurn) {
  // A budget small enough that the working set cannot be resident forces
  // constant insert/evict traffic on every shard.
  const std::size_t entry_bytes =
      service::RouteCache::report_bytes(report_for(0));
  service::RouteCache cache(entry_bytes * 6, /*num_shards=*/2);
  constexpr int kThreads = 8;
  constexpr int kIterations = 40;
  constexpr std::uint64_t kKeys = 32;

  run_threads(kThreads, [&](int t) {
    for (int i = 0; i < kIterations; ++i) {
      const std::uint64_t k =
          static_cast<std::uint64_t>((i * 7 + t * 13) %
                                     static_cast<int>(kKeys));
      const cli::RouteReport report =
          cache.get_or_route(key_for(k), [&] { return report_for(k); });
      EXPECT_EQ(report.name, "key_" + std::to_string(k));
    }
  });

  const service::CacheCounters counters = cache.counters();
  EXPECT_EQ(counters.hits() + counters.misses,
            static_cast<std::size_t>(kThreads) * kIterations);
  EXPECT_GT(counters.evictions, 0u);
  EXPECT_LE(counters.bytes, cache.byte_budget());
}

// ---------------------------------------------------------------------------
// Lazy oracle build + shared row-LRU

/// Dense reference distances for a device graph (its own prepared copy).
std::vector<int> dense_reference(const arch::CouplingGraph& graph) {
  arch::CouplingGraph reference = graph;
  reference.set_distance_policy(arch::DistancePolicy::kDense);
  const int n = reference.num_qubits();
  std::vector<int> dist(static_cast<std::size_t>(n) *
                        static_cast<std::size_t>(n));
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      dist[static_cast<std::size_t>(a) * static_cast<std::size_t>(n) +
           static_cast<std::size_t>(b)] = reference.distance(a, b);
    }
  }
  return dist;
}

TEST(RaceStress, LazyOracleBuildRacesToOneOracle) {
  // The graph is shared *unprepared*: every thread's first distance()
  // races into the lazy build. Exactly one oracle must win, and every
  // thread must read BFS-exact distances through it.
  arch::CouplingGraph graph = arch::grid(8, 8).graph;
  graph.set_distance_policy(arch::DistancePolicy::kOnDemand);
  const std::vector<int> expected = dense_reference(graph);
  const int n = graph.num_qubits();

  std::atomic<const arch::DistanceOracle*> winner{nullptr};
  run_threads(8, [&](int t) {
    for (int i = 0; i < 2 * n; ++i) {
      const int a = (i * 5 + t * 11) % n;
      const int b = (i * 3 + t * 17) % n;
      ASSERT_EQ(graph.distance(a, b),
                expected[static_cast<std::size_t>(a) *
                             static_cast<std::size_t>(n) +
                         static_cast<std::size_t>(b)])
          << a << "," << b;
    }
    // Every thread resolved to the same built oracle instance.
    const arch::DistanceOracle* mine = &graph.oracle();
    const arch::DistanceOracle* expected_oracle = nullptr;
    if (!winner.compare_exchange_strong(expected_oracle, mine)) {
      EXPECT_EQ(mine, expected_oracle);
    }
  });
}

TEST(RaceStress, SharedRowLruServesGraphCopiesUnderEvictionChurn) {
  // Copies of a prepared graph share one on-demand oracle; a row budget of
  // a few rows forces the LRU to evict on nearly every query. Distances
  // must still be byte-identical to the dense backend from every copy.
  const arch::CouplingGraph base = arch::grid(9, 9).graph;
  const std::vector<int> expected = dense_reference(base);
  const int n = base.num_qubits();

  const arch::OnDemandDistanceOracle::Config config{
      /*row_cache_bytes=*/4 * static_cast<std::size_t>(n) * sizeof(int),
      /*num_landmarks=*/4};
  const arch::OnDemandDistanceOracle oracle(base, config);

  run_threads(8, [&](int t) {
    for (int i = 0; i < 3 * n; ++i) {
      const int a = (i * 29 + t * 31) % n;
      const int b = (i * 13 + t * 7) % n;
      const int exact =
          expected[static_cast<std::size_t>(a) * static_cast<std::size_t>(n) +
                   static_cast<std::size_t>(b)];
      ASSERT_EQ(oracle.distance(a, b), exact) << a << "," << b;
      // The landmark table is read lock-free; its bound must stay
      // admissible while the row cache churns.
      ASSERT_LE(oracle.lower_bound(a, b), exact) << a << "," << b;
    }
  });

  EXPECT_LE(oracle.rows_cached(), 4u);
  // Eviction churn actually happened: far more BFS runs than cache slots.
  EXPECT_GT(oracle.row_computations(), 4u);

  // And through CouplingGraph copies sharing one lazily built oracle.
  arch::CouplingGraph shared = base;
  shared.set_distance_policy(arch::DistancePolicy::kOnDemand);
  shared.prepare();
  run_threads(4, [&](int t) {
    const arch::CouplingGraph copy = shared;  // copies share the oracle
    EXPECT_EQ(&copy.oracle(), &shared.oracle());
    for (int i = 0; i < n; ++i) {
      const int a = (i * 23 + t * 41) % n;
      const int b = (i * 19 + t * 3) % n;
      ASSERT_EQ(copy.distance(a, b),
                expected[static_cast<std::size_t>(a) *
                             static_cast<std::size_t>(n) +
                         static_cast<std::size_t>(b)]);
    }
  });
}

// ---------------------------------------------------------------------------
// codar serve

/// Feeds `lines` to run_serve and returns the response lines.
std::vector<std::string> serve(const service::ServeOptions& opts,
                               const std::vector<std::string>& lines) {
  std::string input;
  for (const std::string& line : lines) input += line + "\n";
  std::istringstream in(input);
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(run_serve(opts, in, out, err), 0) << err.str();

  std::vector<std::string> responses;
  std::istringstream splitter(out.str());
  std::string line;
  while (std::getline(splitter, line)) responses.push_back(line);
  return responses;
}

TEST(RaceStress, ServeSingleFlightStormOverWorkerPool) {
  // A worker pool racing over a storm of identical + distinct requests:
  // the cache + single-flight must collapse all duplicates to one route
  // per distinct circuit, with zero errors and one response per request.
  service::ServeOptions opts;
  opts.defaults.device = "q16";
  opts.defaults.threads = 8;

  const std::vector<std::string> names = {"ghz_3", "qft_4", "bv_6"};
  std::vector<std::string> lines;
  constexpr int kWaves = 20;
  for (int wave = 0; wave < kWaves; ++wave) {
    for (std::size_t c = 0; c < names.size(); ++c) {
      lines.push_back(
          "{\"id\": " +
          std::to_string(wave * static_cast<int>(names.size()) +
                         static_cast<int>(c)) +
          ", \"suite_name\": " + service::json_quote(names[c]) + "}");
    }
  }
  lines.push_back(R"({"id": "stats", "cmd": "stats"})");

  const std::vector<std::string> responses = serve(opts, lines);
  ASSERT_EQ(responses.size(), lines.size());

  std::string stats_line;
  std::set<std::string> seen_ids;
  for (const std::string& line : responses) {
    const service::Json doc = service::Json::parse(line);
    const service::Json* id = doc.find("id");
    ASSERT_NE(id, nullptr) << line;
    if (id->is_string()) {
      stats_line = line;
      continue;
    }
    // Every route response is a success envelope with a result object.
    EXPECT_TRUE(seen_ids.insert(id->raw_number()).second) << line;
    EXPECT_NE(doc.find("result"), nullptr) << line;
    EXPECT_EQ(line.find("\"error\": "), std::string::npos) << line;
  }
  EXPECT_EQ(seen_ids.size(), names.size() * kWaves);

  ASSERT_FALSE(stats_line.empty());
  const service::Json stats = service::Json::parse(stats_line);
  EXPECT_EQ(stats.find("errors")->as_number(), 0.0);
  EXPECT_EQ(stats.find("requests")->as_number(),
            static_cast<double>(names.size() * kWaves));
  // The storm routed each distinct circuit exactly once.
  EXPECT_EQ(stats.find("routed")->as_number(),
            static_cast<double>(names.size()));
  EXPECT_EQ(stats.find("cache")->find("misses")->as_number(),
            static_cast<double>(names.size()));
}

TEST(RaceStress, ServeConcurrentInlineDeviceMemoInserts) {
  // Workers race to memoize inline devices by content fingerprint: many
  // requests ship the same few calibrated devices, interleaved so several
  // workers warm and insert the same fingerprint concurrently.
  service::ServeOptions opts;
  opts.defaults.threads = 8;

  auto one_line = [](std::string text) {
    std::replace(text.begin(), text.end(), '\n', ' ');
    return text;
  };
  std::vector<std::string> devices;
  for (int variant = 0; variant < 3; ++variant) {
    arch::Device device = arch::ibm_q16();
    if (variant > 0) {
      // Distinct calibrations → distinct fingerprints → distinct memo
      // entries (a recalibrated device must never alias its twin).
      device.calibration.set_duration_2q(0, 1, 10 + variant);
    }
    devices.push_back(one_line(device_to_json(device)));
  }

  const std::vector<std::string> names = {"ghz_3", "qft_4"};
  std::vector<std::string> lines;
  int id = 0;
  for (int wave = 0; wave < 10; ++wave) {
    for (const std::string& device : devices) {
      for (const std::string& name : names) {
        lines.push_back("{\"id\": " + std::to_string(id++) +
                        ", \"suite_name\": " + service::json_quote(name) +
                        ", \"device\": " + device + "}");
      }
    }
  }
  lines.push_back(R"({"id": "stats", "cmd": "stats"})");

  const std::vector<std::string> responses = serve(opts, lines);
  ASSERT_EQ(responses.size(), lines.size());

  std::string stats_line;
  for (const std::string& line : responses) {
    const service::Json doc = service::Json::parse(line);
    if (doc.find("id")->is_string()) {
      stats_line = line;
      continue;
    }
    ASSERT_NE(doc.find("result"), nullptr) << line;
    EXPECT_EQ(line.find("\"error\": "), std::string::npos) << line;
  }

  ASSERT_FALSE(stats_line.empty());
  const service::Json stats = service::Json::parse(stats_line);
  EXPECT_EQ(stats.find("errors")->as_number(), 0.0);
  // (device, circuit) pairs route once each; every duplicate wave hits.
  EXPECT_EQ(stats.find("routed")->as_number(),
            static_cast<double>(devices.size() * names.size()));
}

}  // namespace
}  // namespace codar

#include <gtest/gtest.h>

#include "codar/arch/extra_devices.hpp"
#include "codar/core/codar_router.hpp"
#include "codar/sabre/sabre_router.hpp"
#include "codar/workloads/suite.hpp"
#include "support/routing_checks.hpp"

namespace codar {
namespace {

// The paper's seven famous algorithms, each routed by both routers on
// several architectures, with structural verification everywhere and exact
// state-vector equivalence where the register fits.

struct FamousCase {
  std::string algorithm;
  std::string device;
  bool use_sabre;
};

arch::Device make_device(const std::string& name) {
  if (name == "grid3x3") return arch::grid(3, 3);
  if (name == "yorktown9") {
    // Yorktown is 5 qubits; use a 9-qubit ring for the odd one out.
    return arch::ring(9);
  }
  if (name == "heavyhex") return arch::heavy_hex(3);
  throw std::runtime_error("unknown device " + name);
}

class FamousAlgorithms : public ::testing::TestWithParam<FamousCase> {};

TEST_P(FamousAlgorithms, RoutesFaithfully) {
  const FamousCase& tc = GetParam();
  const arch::Device dev = make_device(tc.device);

  ir::Circuit circuit(1);
  bool found = false;
  for (const workloads::BenchmarkSpec& spec :
       workloads::famous_algorithms()) {
    if (spec.name == tc.algorithm) {
      circuit = spec.circuit;
      found = true;
    }
  }
  ASSERT_TRUE(found) << tc.algorithm;
  ASSERT_LE(circuit.num_qubits(), dev.graph.num_qubits());

  core::RoutingResult result =
      tc.use_sabre
          ? sabre::SabreRouter(dev).route(circuit)
          : core::CodarRouter(dev).route(circuit);
  testing::expect_routing_valid(circuit, result, dev);
  if (dev.graph.num_qubits() <= 18) {
    testing::expect_states_equivalent(circuit, result, dev);
  }
}

std::vector<FamousCase> famous_cases() {
  std::vector<FamousCase> cases;
  for (const workloads::BenchmarkSpec& spec :
       workloads::famous_algorithms()) {
    for (const char* device : {"grid3x3", "yorktown9", "heavyhex"}) {
      for (const bool use_sabre : {false, true}) {
        cases.push_back(FamousCase{spec.name, device, use_sabre});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAllDevices, FamousAlgorithms,
    ::testing::ValuesIn(famous_cases()),
    [](const ::testing::TestParamInfo<FamousCase>& param_info) {
      return param_info.param.algorithm + "_" + param_info.param.device +
             (param_info.param.use_sabre ? "_sabre" : "_codar");
    });

}  // namespace
}  // namespace codar

#include <gtest/gtest.h>

#include "codar/arch/device.hpp"
#include "codar/core/codar_router.hpp"
#include "codar/qasm/parser.hpp"
#include "codar/qasm/writer.hpp"
#include "support/routing_checks.hpp"

namespace codar {
namespace {

// Full front-to-back pipeline: QASM text -> parse -> route -> emit QASM ->
// re-parse -> the routed circuit still verifies.

constexpr const char* kProgram = R"(OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
creg c[5];
gate majority a,b,c1 { cx c1,b; cx c1,a; ccx a,b,c1; }
h q[0];
cu1(pi/4) q[3],q[0];
cx q[0],q[4];
t q[2];
cx q[4],q[1];
rz(pi/8) q[1];
cx q[1],q[3];
barrier q;
measure q -> c;
)";

TEST(QasmPipeline, ParseRouteEmitReparse) {
  const ir::Circuit parsed = qasm::parse(kProgram, "pipeline");
  EXPECT_EQ(parsed.num_qubits(), 5);

  const arch::Device dev = arch::ibm_q5_yorktown();
  const core::CodarRouter router(dev);
  const core::RoutingResult result = router.route(parsed);
  testing::expect_routing_valid(parsed, result, dev);

  const std::string emitted = qasm::to_qasm(result.circuit);
  const ir::Circuit reparsed = qasm::parse(emitted, "reparsed");
  ASSERT_EQ(reparsed.size(), result.circuit.size());
  for (std::size_t i = 0; i < reparsed.size(); ++i) {
    EXPECT_EQ(reparsed.gate(i), result.circuit.gate(i)) << "gate " << i;
  }
}

TEST(QasmPipeline, UserGateDefinitionRoundTripsThroughRouting) {
  const char* program = R"(OPENQASM 2.0;
qreg q[4];
gate entangle a, b { h a; cx a, b; }
entangle q[0], q[3];
entangle q[1], q[2];
)";
  const ir::Circuit parsed = qasm::parse(program);
  ASSERT_EQ(parsed.size(), 4u);

  const arch::Device dev = arch::linear(4);
  const core::RoutingResult result = core::CodarRouter(dev).route(parsed);
  testing::expect_routing_valid(parsed, result, dev);
  testing::expect_states_equivalent(parsed, result, dev);
}

}  // namespace
}  // namespace codar

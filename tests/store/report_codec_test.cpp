// Report codec tests: the persistent route cache serves decoded reports in
// place of re-routing, and the serve acceptance test compares warm
// responses byte-for-byte against the cold run — so encode/decode must
// round-trip every RouteReport field *exactly* (doubles included), and
// decode must reject anything it cannot fully account for.

#include "codar/store/report_codec.hpp"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace codar::store {
namespace {

pipeline::RouteReport full_report() {
  pipeline::RouteReport r;
  r.name = "qft_8";
  r.error = "";
  r.verified = true;
  r.verify_skipped = false;
  r.qubits = 8;
  r.gates_in = 120;
  r.gates_out = 157;
  r.gates_routed = 118;
  r.barriers = 2;
  r.swaps = 37;
  r.forced_swaps = 5;
  r.escape_swaps = 1;
  r.cycles = 64;
  r.route_us = 1234;
  r.makespan = 987654;
  r.depth_in = 4200;
  r.depth_out = 6900;
  r.log_esp = -3.141592653589793;
  r.routed_qasm = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";
  r.stage_us = {{"parse", 12}, {"route", 1200}, {"verify", 22}};
  return r;
}

void expect_equal(const pipeline::RouteReport& a,
                  const pipeline::RouteReport& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.error, b.error);
  EXPECT_EQ(a.verified, b.verified);
  EXPECT_EQ(a.verify_skipped, b.verify_skipped);
  EXPECT_EQ(a.qubits, b.qubits);
  EXPECT_EQ(a.gates_in, b.gates_in);
  EXPECT_EQ(a.gates_out, b.gates_out);
  EXPECT_EQ(a.gates_routed, b.gates_routed);
  EXPECT_EQ(a.barriers, b.barriers);
  EXPECT_EQ(a.swaps, b.swaps);
  EXPECT_EQ(a.forced_swaps, b.forced_swaps);
  EXPECT_EQ(a.escape_swaps, b.escape_swaps);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.route_us, b.route_us);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.depth_in, b.depth_in);
  EXPECT_EQ(a.depth_out, b.depth_out);
  // Bit-exact, not approximately equal: the JSON layer re-renders this
  // double and the warm response must match the cold one byte-for-byte.
  EXPECT_EQ(std::signbit(a.log_esp), std::signbit(b.log_esp));
  EXPECT_EQ(a.log_esp, b.log_esp);
  EXPECT_EQ(a.routed_qasm, b.routed_qasm);
  ASSERT_EQ(a.stage_us.size(), b.stage_us.size());
  for (std::size_t i = 0; i < a.stage_us.size(); ++i) {
    EXPECT_EQ(a.stage_us[i].stage, b.stage_us[i].stage);
    EXPECT_EQ(a.stage_us[i].us, b.stage_us[i].us);
  }
}

TEST(ReportCodec, RoundTripsEveryField) {
  const pipeline::RouteReport original = full_report();
  pipeline::RouteReport decoded;
  ASSERT_TRUE(decode_report(encode_report(original), &decoded));
  expect_equal(original, decoded);
}

TEST(ReportCodec, RoundTripsDefaultReport) {
  pipeline::RouteReport decoded = full_report();  // start dirty
  ASSERT_TRUE(decode_report(encode_report(pipeline::RouteReport{}), &decoded));
  expect_equal(pipeline::RouteReport{}, decoded);
}

TEST(ReportCodec, RoundTripsAwkwardDoubles) {
  for (const double esp :
       {0.0, -0.0, -745.133, std::numeric_limits<double>::lowest(),
        std::numeric_limits<double>::denorm_min(),
        -std::numeric_limits<double>::infinity()}) {
    pipeline::RouteReport r;
    r.log_esp = esp;
    pipeline::RouteReport decoded;
    ASSERT_TRUE(decode_report(encode_report(r), &decoded));
    // Compare the bit patterns so -0.0 vs 0.0 and infinities all count.
    EXPECT_EQ(std::signbit(r.log_esp), std::signbit(decoded.log_esp));
    EXPECT_TRUE(r.log_esp == decoded.log_esp ||
                (std::isnan(r.log_esp) && std::isnan(decoded.log_esp)));
  }
}

TEST(ReportCodec, RoundTripsEmbeddedNulAndNewlines) {
  pipeline::RouteReport r;
  r.name = std::string("a\0b\nc", 5);
  r.routed_qasm = std::string(1000, '\0');
  pipeline::RouteReport decoded;
  ASSERT_TRUE(decode_report(encode_report(r), &decoded));
  expect_equal(r, decoded);
}

TEST(ReportCodec, RejectsVersionMismatch) {
  std::string bytes = encode_report(full_report());
  bytes[0] = static_cast<char>(bytes[0] + 1);  // bump the version word
  pipeline::RouteReport decoded;
  EXPECT_FALSE(decode_report(bytes, &decoded));
}

TEST(ReportCodec, RejectsEveryTruncation) {
  const std::string bytes = encode_report(full_report());
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    pipeline::RouteReport decoded;
    EXPECT_FALSE(decode_report(std::string_view(bytes).substr(0, cut),
                               &decoded))
        << "accepted a record truncated to " << cut << " bytes";
  }
}

TEST(ReportCodec, RejectsTrailingGarbage) {
  std::string bytes = encode_report(full_report());
  bytes += '\0';
  pipeline::RouteReport decoded;
  EXPECT_FALSE(decode_report(bytes, &decoded));
}

TEST(ReportCodec, RejectsHostileLengthPrefix) {
  // A corrupted string length must fail cleanly, not allocate 2^64 bytes.
  pipeline::RouteReport r;
  r.name = "x";
  std::string bytes = encode_report(r);
  // The name length is the first field after the u32 version word.
  for (std::size_t i = 4; i < 12 && i < bytes.size(); ++i) {
    bytes[i] = static_cast<char>(0xff);
  }
  pipeline::RouteReport decoded;
  EXPECT_FALSE(decode_report(bytes, &decoded));
}

}  // namespace
}  // namespace codar::store

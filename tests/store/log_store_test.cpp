// LogStore tests: append/get round-trips, last-write-wins supersession,
// crash recovery (torn tails, bit flips, zero-length and foreign files),
// segment rotation, budget eviction, compaction, warm-start ordering and
// the directory lock. Corruption scenarios write real damage into real
// segment files — the loader must degrade record-by-record, never refuse
// to start.

#include "codar/store/log_store.hpp"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace codar::store {
namespace {

namespace fs = std::filesystem;

Fingerprint fp(std::uint64_t i) { return Fingerprint{i, i * 31, i * 131}; }

class LogStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(testing::TempDir()) /
           ("codar_log_store_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::unique_ptr<LogStore> open(LogStoreOptions options = {}) {
    options.log = [this](const std::string& msg) { warnings_.push_back(msg); };
    return LogStore::open(dir_.string(), std::move(options));
  }

  std::vector<fs::path> segment_files() const {
    std::vector<fs::path> files;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      if (entry.path().extension() == ".seg") files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    return files;
  }

  fs::path dir_;
  std::vector<std::string> warnings_;
};

TEST_F(LogStoreTest, PutGetRoundTrip) {
  auto store = open();
  EXPECT_TRUE(store->put(fp(1), "alpha"));
  EXPECT_TRUE(store->put(fp(2), std::string("\x00\xff\x7f", 3)));

  std::string payload;
  ASSERT_TRUE(store->get(fp(1), &payload));
  EXPECT_EQ(payload, "alpha");
  ASSERT_TRUE(store->get(fp(2), &payload));
  EXPECT_EQ(payload, std::string("\x00\xff\x7f", 3));
  EXPECT_FALSE(store->get(fp(3), &payload));

  const StoreStats s = store->stats();
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.appends, 2u);
  EXPECT_EQ(s.segments, 1u);
}

TEST_F(LogStoreTest, LastWriteWins) {
  auto store = open();
  store->put(fp(1), "old");
  store->put(fp(1), "new");
  std::string payload;
  ASSERT_TRUE(store->get(fp(1), &payload));
  EXPECT_EQ(payload, "new");
  const StoreStats s = store->stats();
  EXPECT_EQ(s.entries, 1u);
  // The superseded record's bytes are dead weight on disk until compaction.
  EXPECT_GT(s.file_bytes, s.live_bytes);
}

TEST_F(LogStoreTest, ReopenRecoversEverything) {
  {
    auto store = open();
    for (std::uint64_t i = 0; i < 50; ++i) {
      store->put(fp(i), "payload_" + std::to_string(i));
    }
  }
  auto store = open();
  EXPECT_EQ(store->stats().entries, 50u);
  EXPECT_EQ(store->stats().recovered, 50u);
  for (std::uint64_t i = 0; i < 50; ++i) {
    std::string payload;
    ASSERT_TRUE(store->get(fp(i), &payload)) << i;
    EXPECT_EQ(payload, "payload_" + std::to_string(i));
  }
  EXPECT_TRUE(warnings_.empty());
}

TEST_F(LogStoreTest, TornTailIsTruncatedNotFatal) {
  {
    auto store = open();
    store->put(fp(1), "first");
    store->put(fp(2), "second");
  }
  // Simulate a power cut mid-append: chop the last record in half.
  const std::vector<fs::path> files = segment_files();
  ASSERT_EQ(files.size(), 1u);
  const std::uintmax_t size = fs::file_size(files[0]);
  fs::resize_file(files[0], size - 3);

  auto store = open();
  std::string payload;
  ASSERT_TRUE(store->get(fp(1), &payload));
  EXPECT_EQ(payload, "first");
  EXPECT_FALSE(store->get(fp(2), &payload));  // torn away
  EXPECT_EQ(store->stats().entries, 1u);
  EXPECT_FALSE(warnings_.empty());

  // The truncated store keeps working: the lost key can be re-appended
  // and survives the next reopen.
  store->put(fp(2), "second_again");
  store.reset();
  store = open();
  ASSERT_TRUE(store->get(fp(2), &payload));
  EXPECT_EQ(payload, "second_again");
}

TEST_F(LogStoreTest, BitFlipDropsTheRecordAndItsSuccessors) {
  {
    auto store = open();
    store->put(fp(1), "aaaaaaaaaa");
    store->put(fp(2), "bbbbbbbbbb");
  }
  const std::vector<fs::path> files = segment_files();
  ASSERT_EQ(files.size(), 1u);
  // Flip one payload byte of the FIRST record (just past magic + header +
  // key); the CRC catches it, and the scan cannot trust anything after an
  // unverifiable record boundary.
  {
    std::fstream f(files[0],
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(8 + 4 + 4 + 24 + 2);
    char byte = 0;
    f.seekg(8 + 4 + 4 + 24 + 2);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(8 + 4 + 4 + 24 + 2);
    f.write(&byte, 1);
  }
  auto store = open();
  std::string payload;
  EXPECT_FALSE(store->get(fp(1), &payload));
  EXPECT_EQ(store->stats().entries, 0u);
  EXPECT_GE(store->stats().corrupt_dropped, 1u);
  EXPECT_FALSE(warnings_.empty());
}

TEST_F(LogStoreTest, ZeroLengthAndForeignSegmentsAreSkipped) {
  {
    auto store = open();
    store->put(fp(1), "keep");
  }
  // A zero-length segment (crash between create and magic) and a file with
  // someone else's magic must both be discarded without aborting startup.
  std::ofstream(dir_ / "codar-000000009998.seg").flush();
  std::ofstream(dir_ / "codar-000000009999.seg") << "NOTCODAR garbage";

  auto store = open();
  std::string payload;
  ASSERT_TRUE(store->get(fp(1), &payload));
  EXPECT_EQ(payload, "keep");
  EXPECT_GE(store->stats().corrupt_dropped, 2u);
  EXPECT_GE(warnings_.size(), 2u);
}

TEST_F(LogStoreTest, RotationSpansSegments) {
  LogStoreOptions options;
  options.max_segment_bytes = 256;  // a few records per segment
  {
    auto store = open(options);
    for (std::uint64_t i = 0; i < 20; ++i) {
      store->put(fp(i), std::string(64, static_cast<char>('a' + i % 26)));
    }
    EXPECT_GT(store->stats().segments, 1u);
  }
  EXPECT_GT(segment_files().size(), 1u);
  // Recovery walks all of them.
  auto store = open(options);
  EXPECT_EQ(store->stats().entries, 20u);
  for (std::uint64_t i = 0; i < 20; ++i) {
    std::string payload;
    ASSERT_TRUE(store->get(fp(i), &payload)) << i;
  }
}

TEST_F(LogStoreTest, BudgetEvictsOldestFirst) {
  LogStoreOptions options;
  options.max_total_bytes = 400;
  auto store = open(options);
  for (std::uint64_t i = 0; i < 10; ++i) {
    store->put(fp(i), std::string(64, 'x'));
  }
  const StoreStats s = store->stats();
  EXPECT_GT(s.evictions, 0u);
  EXPECT_LE(s.live_bytes, 400u);
  // The newest keys survive; the oldest were evicted.
  std::string payload;
  EXPECT_TRUE(store->get(fp(9), &payload));
  EXPECT_FALSE(store->get(fp(0), &payload));
}

TEST_F(LogStoreTest, OversizedPayloadIsRejectedNotAdmitted) {
  LogStoreOptions options;
  options.max_total_bytes = 128;
  auto store = open(options);
  store->put(fp(1), "small");
  EXPECT_TRUE(store->put(fp(2), std::string(4096, 'x')));  // not an I/O error
  std::string payload;
  EXPECT_FALSE(store->get(fp(2), &payload));  // ... but not stored either
  EXPECT_TRUE(store->get(fp(1), &payload));   // and it flushed nothing
  EXPECT_GE(store->stats().evictions, 1u);
}

TEST_F(LogStoreTest, CompactionDropsDeadBytesAndPreservesLiveData) {
  LogStoreOptions options;
  options.max_segment_bytes = 512;
  auto store = open(options);
  // Overwrite the same small key set many times: most bytes on disk die.
  for (int round = 0; round < 20; ++round) {
    for (std::uint64_t i = 0; i < 4; ++i) {
      store->put(fp(i), "round_" + std::to_string(round) + "_" +
                            std::to_string(i));
    }
  }
  const StoreStats before = store->stats();
  const std::size_t reclaimed = store->compact();
  const StoreStats after = store->stats();
  EXPECT_GT(reclaimed, 0u);
  EXPECT_LT(after.file_bytes, before.file_bytes);
  EXPECT_EQ(after.entries, 4u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    std::string payload;
    ASSERT_TRUE(store->get(fp(i), &payload));
    EXPECT_EQ(payload, "round_19_" + std::to_string(i));
  }
  // The compacted layout must survive a reopen (file set and index agree).
  store.reset();
  store = open(options);
  EXPECT_EQ(store->stats().entries, 4u);
  std::string payload;
  ASSERT_TRUE(store->get(fp(2), &payload));
  EXPECT_EQ(payload, "round_19_2");
}

TEST_F(LogStoreTest, CompactionTriggersAutomaticallyOnWasteRatio) {
  LogStoreOptions options;
  options.max_segment_bytes = 256;
  options.compact_waste_ratio = 0.5;
  auto store = open(options);
  for (int round = 0; round < 50; ++round) {
    store->put(fp(1), std::string(64, static_cast<char>('a' + round % 26)));
  }
  EXPECT_GT(store->stats().compactions, 0u);
  // Despite 50 appends of 64-byte payloads, disk stays near one record.
  EXPECT_LT(store->stats().file_bytes, 50u * 64u / 2);
}

TEST_F(LogStoreTest, RecentEntriesFeedWarmStartOldestToNewest) {
  auto store = open();
  for (std::uint64_t i = 0; i < 6; ++i) {
    store->put(fp(i), "p" + std::to_string(i));
  }
  // Re-touching key 1 moves it to the newest end.
  store->put(fp(1), "p1b");

  const auto entries = store->recent_entries(3);
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].first, fp(4));
  EXPECT_EQ(entries[1].first, fp(5));
  EXPECT_EQ(entries[2].first, fp(1));  // newest last
  EXPECT_EQ(entries[2].second, "p1b");

  // Asking for more than exists returns everything.
  EXPECT_EQ(store->recent_entries(100).size(), 6u);
}

TEST_F(LogStoreTest, DirLockRefusesASecondStore) {
  auto store = open();
  EXPECT_THROW(LogStore::open(dir_.string(), {}), std::runtime_error);
  store.reset();
  // Released with the first store: reopening now succeeds.
  EXPECT_NO_THROW(LogStore::open(dir_.string(), {}));
}

TEST_F(LogStoreTest, OpenCreatesMissingDirectories) {
  dir_ /= "nested/deeper";
  auto store = open();
  store->put(fp(1), "x");
  std::string payload;
  EXPECT_TRUE(store->get(fp(1), &payload));
}

}  // namespace
}  // namespace codar::store

#include "codar/ir/inverse.hpp"

#include <gtest/gtest.h>

#include "codar/ir/peephole.hpp"
#include "codar/ir/unitary.hpp"
#include "codar/sim/statevector.hpp"
#include "codar/workloads/generators.hpp"

namespace codar::ir {
namespace {

/// Every invertible gate with representative parameters.
std::vector<Gate> invertible_gates() {
  return {
      Gate::i(0),           Gate::x(0),
      Gate::y(0),           Gate::z(0),
      Gate::h(0),           Gate::s(0),
      Gate::sdg(0),         Gate::t(0),
      Gate::tdg(0),         Gate::sx(0),
      Gate::rx(0, 0.7),     Gate::ry(0, -1.3),
      Gate::rz(0, 2.1),     Gate::u1(0, 0.4),
      Gate::u2(0, 0.3, 1.1), Gate::u3(0, 0.5, 0.6, 0.7),
      Gate::cx(0, 1),       Gate::cz(0, 1),
      Gate::cy(0, 1),       Gate::ch(0, 1),
      Gate::crz(0, 1, 0.9), Gate::cu1(0, 1, 1.2),
      Gate::rzz(0, 1, 0.8), Gate::swap(0, 1),
      Gate::ccx(0, 1, 2),
  };
}

TEST(Inverse, EveryGateTimesItsInverseIsIdentityUpToPhase) {
  for (const Gate& g : invertible_gates()) {
    const Gate inv = inverse(g);
    const Qubit joint[] = {0, 1, 2};
    const Matrix u = embed(g, joint);
    const Matrix ui = embed(inv, joint);
    const Matrix product = ui * u;
    // product must be a scalar multiple of identity (phase only).
    const Complex phase = product.at(0, 0);
    EXPECT_NEAR(std::abs(phase), 1.0, 1e-9) << g.to_string();
    Matrix scaled = Matrix::identity(8);
    for (std::size_t i = 0; i < 8; ++i) scaled.at(i, i) = phase;
    EXPECT_LT((product - scaled).max_abs(), 1e-9) << g.to_string();
  }
}

TEST(Inverse, SelfInverseKindsMapToThemselves) {
  EXPECT_EQ(inverse(Gate::h(3)), Gate::h(3));
  EXPECT_EQ(inverse(Gate::cx(1, 2)), Gate::cx(1, 2));
  EXPECT_EQ(inverse(Gate::ccx(0, 1, 2)), Gate::ccx(0, 1, 2));
}

TEST(Inverse, AdjointPairsSwap) {
  EXPECT_EQ(inverse(Gate::s(0)).kind(), GateKind::kSdg);
  EXPECT_EQ(inverse(Gate::sdg(0)).kind(), GateKind::kS);
  EXPECT_EQ(inverse(Gate::t(0)).kind(), GateKind::kTdg);
  EXPECT_EQ(inverse(Gate::tdg(0)).kind(), GateKind::kT);
}

TEST(Inverse, RotationsNegate) {
  EXPECT_DOUBLE_EQ(inverse(Gate::rz(0, 0.5)).param(0), -0.5);
  EXPECT_DOUBLE_EQ(inverse(Gate::cu1(0, 1, 1.5)).param(0), -1.5);
}

TEST(Inverse, MeasureAndBarrierThrow) {
  EXPECT_THROW(inverse(Gate::measure(0)), ContractViolation);
  const Qubit qs[] = {0, 1};
  EXPECT_THROW(inverse(Gate::barrier(qs)), ContractViolation);
  Circuit c(1);
  c.measure(0);
  EXPECT_THROW(inverse(c), ContractViolation);
}

TEST(Inverse, CircuitInverseReversesOrder) {
  Circuit c(2);
  c.h(0);
  c.cx(0, 1);
  c.t(1);
  const Circuit inv = inverse(c);
  ASSERT_EQ(inv.size(), 3u);
  EXPECT_EQ(inv.gate(0).kind(), GateKind::kTdg);
  EXPECT_EQ(inv.gate(1).kind(), GateKind::kCX);
  EXPECT_EQ(inv.gate(2).kind(), GateKind::kH);
}

TEST(Mirror, ReturnsToGroundState) {
  for (const auto& circuit :
       {workloads::qft(5), workloads::w_state(4),
        workloads::hidden_shift(4, 0b0110) /* has measures... */}) {
    // Strip measures for mirroring.
    Circuit unitary_only(circuit.num_qubits(), circuit.name());
    for (const Gate& g : circuit.gates()) {
      if (is_unitary(g.kind())) unitary_only.add(g);
    }
    const Circuit m = mirror(unitary_only);
    sim::Statevector psi(m.num_qubits());
    psi.apply(m);
    EXPECT_NEAR(std::abs(psi.amp(0)), 1.0, 1e-9) << circuit.name();
  }
}

TEST(Mirror, RandomCircuitMirrorIsIdentity) {
  const Circuit c = workloads::random_circuit(5, 120, 0.4, 77);
  const Circuit m = mirror(c);
  sim::Statevector psi(5);
  psi.apply(m);
  EXPECT_NEAR(std::abs(psi.amp(0)), 1.0, 1e-9);
}

TEST(Mirror, PeepholeCollapsesMirrorCompletely) {
  // The optimizer should eat the entire mirrored random circuit (every
  // pair cancels inward), a strong cross-check of both passes.
  Circuit c(4);
  c.h(0);
  c.cx(0, 1);
  c.t(1);
  c.rz(2, 0.8);
  c.cz(2, 3);
  const Circuit m = mirror(c);
  const Circuit opt = peephole_optimize(m);
  EXPECT_TRUE(opt.empty()) << "left " << opt.size() << " gates";
}

}  // namespace
}  // namespace codar::ir

#include "codar/ir/gate.hpp"

#include <gtest/gtest.h>

namespace codar::ir {
namespace {

TEST(GateInfo, EveryKindHasMetadata) {
  for (std::size_t i = 0; i < kGateKindCount; ++i) {
    const GateInfo& info = gate_info(static_cast<GateKind>(i));
    EXPECT_NE(info.name, nullptr);
    EXPECT_GE(info.num_params, 0);
  }
}

TEST(GateInfo, AritiesMatchAlphabet) {
  EXPECT_EQ(gate_info(GateKind::kH).num_qubits, 1);
  EXPECT_EQ(gate_info(GateKind::kCX).num_qubits, 2);
  EXPECT_EQ(gate_info(GateKind::kCCX).num_qubits, 3);
  EXPECT_EQ(gate_info(GateKind::kU3).num_params, 3);
  EXPECT_EQ(gate_info(GateKind::kRZ).num_params, 1);
  EXPECT_EQ(gate_info(GateKind::kBarrier).num_qubits, -1);
}

TEST(GateClassification, DiagonalFamily) {
  EXPECT_TRUE(is_diagonal(GateKind::kZ));
  EXPECT_TRUE(is_diagonal(GateKind::kT));
  EXPECT_TRUE(is_diagonal(GateKind::kRZ));
  EXPECT_TRUE(is_diagonal(GateKind::kCZ));
  EXPECT_TRUE(is_diagonal(GateKind::kCU1));
  EXPECT_TRUE(is_diagonal(GateKind::kRZZ));
  EXPECT_FALSE(is_diagonal(GateKind::kX));
  EXPECT_FALSE(is_diagonal(GateKind::kH));
  EXPECT_FALSE(is_diagonal(GateKind::kCX));
  EXPECT_FALSE(is_diagonal(GateKind::kSwap));
}

TEST(GateClassification, XAxisFamily) {
  EXPECT_TRUE(is_x_axis(GateKind::kX));
  EXPECT_TRUE(is_x_axis(GateKind::kRX));
  EXPECT_TRUE(is_x_axis(GateKind::kSX));
  EXPECT_FALSE(is_x_axis(GateKind::kY));
  EXPECT_FALSE(is_x_axis(GateKind::kH));
}

TEST(GateClassification, TwoQubitAndUnitary) {
  EXPECT_TRUE(is_two_qubit(GateKind::kCX));
  EXPECT_TRUE(is_two_qubit(GateKind::kSwap));
  EXPECT_FALSE(is_two_qubit(GateKind::kH));
  EXPECT_FALSE(is_two_qubit(GateKind::kCCX));
  EXPECT_TRUE(is_unitary(GateKind::kH));
  EXPECT_FALSE(is_unitary(GateKind::kMeasure));
  EXPECT_FALSE(is_unitary(GateKind::kBarrier));
}

TEST(Gate, FactoryOperandsAndParams) {
  const Gate g = Gate::cx(2, 5);
  EXPECT_EQ(g.kind(), GateKind::kCX);
  EXPECT_EQ(g.num_qubits(), 2);
  EXPECT_EQ(g.qubit(0), 2);
  EXPECT_EQ(g.qubit(1), 5);
  EXPECT_EQ(g.num_params(), 0);

  const Gate r = Gate::rz(1, 0.75);
  EXPECT_EQ(r.num_params(), 1);
  EXPECT_DOUBLE_EQ(r.param(0), 0.75);

  const Gate u = Gate::u3(0, 0.1, 0.2, 0.3);
  EXPECT_DOUBLE_EQ(u.param(0), 0.1);
  EXPECT_DOUBLE_EQ(u.param(1), 0.2);
  EXPECT_DOUBLE_EQ(u.param(2), 0.3);
}

TEST(Gate, RejectsDuplicateQubits) {
  EXPECT_THROW(Gate::cx(3, 3), ContractViolation);
  EXPECT_THROW(Gate::ccx(1, 2, 1), ContractViolation);
}

TEST(Gate, RejectsNegativeQubits) {
  EXPECT_THROW(Gate::h(-1), ContractViolation);
  EXPECT_THROW(Gate::cx(-2, 0), ContractViolation);
}

TEST(Gate, RejectsWrongArity) {
  const Qubit qs[] = {0, 1};
  EXPECT_THROW(Gate(GateKind::kH, qs), ContractViolation);
  const Qubit one[] = {0};
  const double ps[] = {0.5};
  EXPECT_THROW(Gate(GateKind::kH, one, ps), ContractViolation);
}

TEST(Gate, ActsOnAndOverlaps) {
  const Gate g = Gate::cx(1, 4);
  EXPECT_TRUE(g.acts_on(1));
  EXPECT_TRUE(g.acts_on(4));
  EXPECT_FALSE(g.acts_on(2));
  EXPECT_TRUE(g.overlaps(Gate::h(4)));
  EXPECT_FALSE(g.overlaps(Gate::h(3)));
  EXPECT_TRUE(g.overlaps(Gate::cx(4, 7)));
}

TEST(Gate, RemappedAppliesFunctionToAllOperands) {
  const Gate g = Gate::ccx(0, 1, 2);
  const Gate r = g.remapped([](Qubit q) { return q + 10; });
  EXPECT_EQ(r.qubit(0), 10);
  EXPECT_EQ(r.qubit(1), 11);
  EXPECT_EQ(r.qubit(2), 12);
  EXPECT_EQ(r.kind(), GateKind::kCCX);
}

TEST(Gate, EqualityIsStructural) {
  EXPECT_EQ(Gate::cx(0, 1), Gate::cx(0, 1));
  EXPECT_FALSE(Gate::cx(0, 1) == Gate::cx(1, 0));
  EXPECT_FALSE(Gate::rz(0, 0.5) == Gate::rz(0, 0.6));
  EXPECT_FALSE(Gate::x(0) == Gate::y(0));
}

TEST(Gate, ToStringRendersQasmStyle) {
  EXPECT_EQ(Gate::cx(0, 3).to_string(), "cx q[0], q[3]");
  EXPECT_EQ(Gate::t(2).to_string(), "t q[2]");
  EXPECT_EQ(Gate::rz(1, 0.5).to_string(), "rz(0.5) q[1]");
}

TEST(Gate, BarrierAcceptsVariableOperandCount) {
  const Qubit two[] = {0, 1};
  const Gate b2 = Gate::barrier(two);
  EXPECT_EQ(b2.num_qubits(), 2);
  const Qubit three[] = {0, 1, 2};
  EXPECT_EQ(Gate::barrier(three).num_qubits(), 3);
  EXPECT_THROW(Gate::barrier({}), ContractViolation);
}

}  // namespace
}  // namespace codar::ir

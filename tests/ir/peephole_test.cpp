#include "codar/ir/peephole.hpp"

#include <gtest/gtest.h>

#include "codar/sim/statevector.hpp"
#include "codar/workloads/generators.hpp"

namespace codar::ir {
namespace {

void expect_equivalent(const Circuit& a, const Circuit& b,
                       double tol = 1e-9) {
  ASSERT_EQ(a.num_qubits(), b.num_qubits());
  sim::Statevector sa(a.num_qubits());
  sa.apply(a);
  sim::Statevector sb(b.num_qubits());
  sb.apply(b);
  EXPECT_NEAR(sa.fidelity(sb), 1.0, tol);
}

TEST(Peephole, RemovesIdentities) {
  Circuit c(2);
  c.i(0);
  c.h(1);
  c.i(1);
  const Circuit opt = peephole_optimize(c);
  ASSERT_EQ(opt.size(), 1u);
  EXPECT_EQ(opt.gate(0).kind(), GateKind::kH);
}

TEST(Peephole, CancelsAdjacentSelfInversePairs) {
  Circuit c(3);
  c.h(0);
  c.h(0);
  c.x(1);
  c.x(1);
  c.cx(1, 2);
  c.cx(1, 2);
  PeepholeStats stats;
  const Circuit opt = peephole_optimize(c, &stats);
  EXPECT_TRUE(opt.empty());
  EXPECT_EQ(stats.gates_removed, 6u);
}

TEST(Peephole, CancelsAdjointPairs) {
  Circuit c(1);
  c.s(0);
  c.sdg(0);
  c.t(0);
  c.tdg(0);
  c.tdg(0);
  c.t(0);
  EXPECT_TRUE(peephole_optimize(c).empty());
}

TEST(Peephole, SymmetricGatesCancelInEitherOperandOrder) {
  Circuit c(2);
  c.cz(0, 1);
  c.cz(1, 0);
  c.swap(0, 1);
  c.swap(1, 0);
  EXPECT_TRUE(peephole_optimize(c).empty());
}

TEST(Peephole, CxDoesNotCancelWhenReversed) {
  Circuit c(2);
  c.cx(0, 1);
  c.cx(1, 0);
  const Circuit opt = peephole_optimize(c);
  EXPECT_EQ(opt.size(), 2u);
}

TEST(Peephole, InterveningGateBlocksCancellation) {
  Circuit c(2);
  c.h(0);
  c.t(0);
  c.h(0);
  EXPECT_EQ(peephole_optimize(c).size(), 3u);
  Circuit c2(2);
  c2.cx(0, 1);
  c2.t(1);  // blocks on the target wire
  c2.cx(0, 1);
  EXPECT_EQ(peephole_optimize(c2).size(), 3u);
}

TEST(Peephole, DisjointGateDoesNotBlock) {
  Circuit c(3);
  c.h(0);
  c.t(2);  // different wire entirely
  c.h(0);
  const Circuit opt = peephole_optimize(c);
  ASSERT_EQ(opt.size(), 1u);
  EXPECT_EQ(opt.gate(0).kind(), GateKind::kT);
}

TEST(Peephole, FusesRotations) {
  Circuit c(2);
  c.rz(0, 0.25);
  c.rz(0, 0.50);
  c.cu1(0, 1, 0.125);
  c.cu1(1, 0, 0.375);  // symmetric: fuses across operand order
  PeepholeStats stats;
  const Circuit opt = peephole_optimize(c, &stats);
  ASSERT_EQ(opt.size(), 2u);
  EXPECT_DOUBLE_EQ(opt.gate(0).param(0), 0.75);
  EXPECT_DOUBLE_EQ(opt.gate(1).param(0), 0.5);
  EXPECT_EQ(stats.gates_fused, 2u);
}

TEST(Peephole, FusedZeroRotationDisappears) {
  Circuit c(1);
  c.rz(0, 0.5);
  c.rz(0, -0.5);
  EXPECT_TRUE(peephole_optimize(c).empty());
}

TEST(Peephole, CascadingCancellation) {
  // Outer pair becomes adjacent after the inner pair cancels.
  Circuit c(1);
  c.h(0);
  c.x(0);
  c.x(0);
  c.h(0);
  EXPECT_TRUE(peephole_optimize(c).empty());
}

TEST(Peephole, FusionThenCancellationChains) {
  Circuit c(1);
  c.h(0);
  c.rz(0, 0.7);
  c.rz(0, -0.7);
  c.h(0);
  EXPECT_TRUE(peephole_optimize(c).empty());
}

TEST(Peephole, BarrierBlocksOptimization) {
  Circuit c(1);
  c.h(0);
  const Qubit qs[] = {0};
  c.barrier(qs);
  c.h(0);
  EXPECT_EQ(peephole_optimize(c).size(), 3u);
}

TEST(Peephole, MeasureBlocksOptimization) {
  Circuit c(1);
  c.x(0);
  c.measure(0);
  c.x(0);
  EXPECT_EQ(peephole_optimize(c).size(), 3u);
}

/// Property: optimizing a random circuit + its inverse-noise padding must
/// preserve semantics exactly.
class PeepholeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PeepholeProperty, PreservesSemanticsOnRandomCircuits) {
  const Circuit c = workloads::random_circuit(5, 150, 0.4, GetParam());
  const Circuit opt = peephole_optimize(c);
  EXPECT_LE(opt.size(), c.size());
  expect_equivalent(c, opt);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PeepholeProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Peephole, ShrinksRedundantWorkload) {
  // A deliberately wasteful circuit: pairs of H walls around a QFT.
  Circuit c(4);
  for (Qubit q = 0; q < 4; ++q) c.h(q);
  for (Qubit q = 0; q < 4; ++q) c.h(q);
  c.append(workloads::qft(4));
  PeepholeStats stats;
  const Circuit opt = peephole_optimize(c, &stats);
  EXPECT_EQ(opt.size(), workloads::qft(4).size());
  EXPECT_EQ(stats.gates_removed, 8u);
  expect_equivalent(c, opt);
}

}  // namespace
}  // namespace codar::ir

#include "codar/ir/dag.hpp"

#include <gtest/gtest.h>

namespace codar::ir {
namespace {

TEST(DependencyDag, LinearChainOnOneWire) {
  Circuit c(1);
  c.h(0);
  c.t(0);
  c.x(0);
  const DependencyDag dag(c);
  EXPECT_EQ(dag.roots(), (std::vector<int>{0}));
  EXPECT_EQ(dag.successors(0), (std::vector<int>{1}));
  EXPECT_EQ(dag.successors(1), (std::vector<int>{2}));
  EXPECT_TRUE(dag.successors(2).empty());
  EXPECT_EQ(dag.in_degree(2), 1);
}

TEST(DependencyDag, IndependentWiresAreAllRoots) {
  Circuit c(3);
  c.h(0);
  c.h(1);
  c.h(2);
  const DependencyDag dag(c);
  EXPECT_EQ(dag.roots(), (std::vector<int>{0, 1, 2}));
}

TEST(DependencyDag, TwoQubitGateJoinsWires) {
  Circuit c(2);
  c.h(0);    // 0
  c.t(1);    // 1
  c.cx(0, 1);  // 2 depends on 0 and 1
  c.x(0);    // 3 depends on 2
  const DependencyDag dag(c);
  EXPECT_EQ(dag.in_degree(2), 2);
  EXPECT_EQ(dag.predecessors(2), (std::vector<int>{0, 1}));
  EXPECT_EQ(dag.predecessors(3), (std::vector<int>{2}));
}

TEST(DependencyDag, DuplicateEdgeCollapsed) {
  Circuit c(2);
  c.cx(0, 1);  // 0
  c.cx(0, 1);  // 1 depends on 0 via both wires -> single edge
  const DependencyDag dag(c);
  EXPECT_EQ(dag.in_degree(1), 1);
  EXPECT_EQ(dag.successors(0), (std::vector<int>{1}));
}

TEST(DependencyDag, BarrierOrdersItsQubits) {
  Circuit c(2);
  c.h(0);  // 0
  const Qubit both[] = {0, 1};
  c.barrier(both);  // 1
  c.h(1);  // 2 must wait for the barrier
  const DependencyDag dag(c);
  EXPECT_EQ(dag.predecessors(1), (std::vector<int>{0}));
  EXPECT_EQ(dag.predecessors(2), (std::vector<int>{1}));
}

TEST(DependencyDag, SizeMatchesCircuit) {
  Circuit c(2);
  c.h(0);
  c.cx(0, 1);
  const DependencyDag dag(c);
  EXPECT_EQ(dag.size(), 2u);
  EXPECT_THROW(dag.successors(5), ContractViolation);
}

}  // namespace
}  // namespace codar::ir

#include "codar/ir/circuit.hpp"

#include <gtest/gtest.h>

namespace codar::ir {
namespace {

TEST(Circuit, StartsEmpty) {
  const Circuit c(4, "test");
  EXPECT_EQ(c.num_qubits(), 4);
  EXPECT_EQ(c.name(), "test");
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.size(), 0u);
}

TEST(Circuit, AddAndAccess) {
  Circuit c(3);
  c.h(0);
  c.cx(0, 1);
  c.t(2);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c.gate(0).kind(), GateKind::kH);
  EXPECT_EQ(c.gate(1).kind(), GateKind::kCX);
  EXPECT_EQ(c.gate(2).qubit(0), 2);
}

TEST(Circuit, RejectsOutOfRangeQubits) {
  Circuit c(2);
  EXPECT_THROW(c.h(2), ContractViolation);
  EXPECT_THROW(c.cx(0, 5), ContractViolation);
  EXPECT_THROW(c.gate(0), ContractViolation);
}

TEST(Circuit, CountsTwoQubitGatesAndSwaps) {
  Circuit c(4);
  c.h(0);
  c.cx(0, 1);
  c.swap(1, 2);
  c.cz(2, 3);
  c.ccx(0, 1, 2);
  EXPECT_EQ(c.two_qubit_gate_count(), 3u);  // cx, swap, cz
  EXPECT_EQ(c.swap_count(), 1u);
}

TEST(Circuit, UsedQubitCount) {
  Circuit c(10);
  EXPECT_EQ(c.used_qubit_count(), 0);
  c.h(3);
  EXPECT_EQ(c.used_qubit_count(), 4);
  c.cx(3, 7);
  EXPECT_EQ(c.used_qubit_count(), 8);
}

TEST(Circuit, ReversedReversesOrder) {
  Circuit c(2);
  c.h(0);
  c.cx(0, 1);
  c.t(1);
  const Circuit r = c.reversed();
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r.gate(0).kind(), GateKind::kT);
  EXPECT_EQ(r.gate(1).kind(), GateKind::kCX);
  EXPECT_EQ(r.gate(2).kind(), GateKind::kH);
}

TEST(Circuit, AppendConcatenates) {
  Circuit a(3);
  a.h(0);
  Circuit b(3);
  b.cx(1, 2);
  a.append(b);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a.gate(1).kind(), GateKind::kCX);
}

TEST(Circuit, AppendRejectsWiderCircuit) {
  Circuit narrow(2);
  Circuit wide(5);
  EXPECT_THROW(narrow.append(wide), ContractViolation);
}

TEST(Circuit, RemappedRelocatesQubits) {
  Circuit c(2);
  c.h(0);
  c.cx(0, 1);
  const std::vector<Qubit> remap = {4, 2};
  const Circuit r = c.remapped(remap, 5);
  EXPECT_EQ(r.num_qubits(), 5);
  EXPECT_EQ(r.gate(0).qubit(0), 4);
  EXPECT_EQ(r.gate(1).qubit(0), 4);
  EXPECT_EQ(r.gate(1).qubit(1), 2);
}

TEST(Circuit, RemappedRejectsShortMap) {
  Circuit c(3);
  c.h(2);
  const std::vector<Qubit> remap = {0, 1};  // too short
  EXPECT_THROW(c.remapped(remap, 5), ContractViolation);
}

}  // namespace
}  // namespace codar::ir

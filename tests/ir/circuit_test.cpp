#include "codar/ir/circuit.hpp"

#include <gtest/gtest.h>

namespace codar::ir {
namespace {

TEST(Circuit, StartsEmpty) {
  const Circuit c(4, "test");
  EXPECT_EQ(c.num_qubits(), 4);
  EXPECT_EQ(c.name(), "test");
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.size(), 0u);
}

TEST(Circuit, AddAndAccess) {
  Circuit c(3);
  c.h(0);
  c.cx(0, 1);
  c.t(2);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c.gate(0).kind(), GateKind::kH);
  EXPECT_EQ(c.gate(1).kind(), GateKind::kCX);
  EXPECT_EQ(c.gate(2).qubit(0), 2);
}

TEST(Circuit, RejectsOutOfRangeQubits) {
  Circuit c(2);
  EXPECT_THROW(c.h(2), ContractViolation);
  EXPECT_THROW(c.cx(0, 5), ContractViolation);
  EXPECT_THROW(c.gate(0), ContractViolation);
}

TEST(Circuit, CountsTwoQubitGatesAndSwaps) {
  Circuit c(4);
  c.h(0);
  c.cx(0, 1);
  c.swap(1, 2);
  c.cz(2, 3);
  c.ccx(0, 1, 2);
  EXPECT_EQ(c.two_qubit_gate_count(), 3u);  // cx, swap, cz
  EXPECT_EQ(c.swap_count(), 1u);
}

TEST(Circuit, UsedQubitCount) {
  Circuit c(10);
  EXPECT_EQ(c.used_qubit_count(), 0);
  c.h(3);
  EXPECT_EQ(c.used_qubit_count(), 4);
  c.cx(3, 7);
  EXPECT_EQ(c.used_qubit_count(), 8);
}

TEST(Circuit, ReversedReversesOrder) {
  Circuit c(2);
  c.h(0);
  c.cx(0, 1);
  c.t(1);
  const Circuit r = c.reversed();
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r.gate(0).kind(), GateKind::kT);
  EXPECT_EQ(r.gate(1).kind(), GateKind::kCX);
  EXPECT_EQ(r.gate(2).kind(), GateKind::kH);
}

TEST(Circuit, AppendConcatenates) {
  Circuit a(3);
  a.h(0);
  Circuit b(3);
  b.cx(1, 2);
  a.append(b);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a.gate(1).kind(), GateKind::kCX);
}

TEST(Circuit, AppendRejectsWiderCircuit) {
  Circuit narrow(2);
  Circuit wide(5);
  EXPECT_THROW(narrow.append(wide), ContractViolation);
}

TEST(Circuit, RemappedRelocatesQubits) {
  Circuit c(2);
  c.h(0);
  c.cx(0, 1);
  const std::vector<Qubit> remap = {4, 2};
  const Circuit r = c.remapped(remap, 5);
  EXPECT_EQ(r.num_qubits(), 5);
  EXPECT_EQ(r.gate(0).qubit(0), 4);
  EXPECT_EQ(r.gate(1).qubit(0), 4);
  EXPECT_EQ(r.gate(1).qubit(1), 2);
}

TEST(Circuit, RemappedRejectsShortMap) {
  Circuit c(3);
  c.h(2);
  const std::vector<Qubit> remap = {0, 1};  // too short
  EXPECT_THROW(c.remapped(remap, 5), ContractViolation);
}

// -- Fingerprints -----------------------------------------------------------

TEST(CircuitFingerprint, PinnedValues) {
  // Pinned across runs, platforms and build modes: the serve route cache
  // keys on these, so a silent change would invalidate persisted caches.
  // If a fingerprint-schema change is intentional, bump the version tag in
  // Circuit::fingerprint and re-pin.
  Circuit ghz(3, "ghz");
  ghz.h(0);
  ghz.cx(0, 1);
  ghz.cx(1, 2);
  EXPECT_EQ(ghz.fingerprint(), 0x2c6528ed2659d711ull);

  Circuit rot(2);
  rot.rz(0, 0.5);
  rot.cx(0, 1);
  EXPECT_EQ(rot.fingerprint(), 0x815b71b962e6d544ull);
}

TEST(CircuitFingerprint, IgnoresNameButNotStructure) {
  Circuit a(3, "first");
  a.h(0);
  a.cx(0, 1);
  Circuit b(3, "second");
  b.h(0);
  b.cx(0, 1);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());

  b.set_name("first");
  b.t(2);
  EXPECT_NE(a.fingerprint(), b.fingerprint());

  // Register width, operand order and parameter values all distinguish.
  Circuit wide(4, "first");
  wide.h(0);
  wide.cx(0, 1);
  EXPECT_NE(a.fingerprint(), wide.fingerprint());

  Circuit flipped(3, "first");
  flipped.h(0);
  flipped.cx(1, 0);
  EXPECT_NE(a.fingerprint(), flipped.fingerprint());

  Circuit angle_a(1);
  angle_a.rz(0, 0.25);
  Circuit angle_b(1);
  angle_b.rz(0, 0.50);
  EXPECT_NE(angle_a.fingerprint(), angle_b.fingerprint());
}

TEST(CircuitFingerprint, GateOrderMatters) {
  Circuit ab(2);
  ab.h(0);
  ab.h(1);
  Circuit ba(2);
  ba.h(1);
  ba.h(0);
  EXPECT_NE(ab.fingerprint(), ba.fingerprint());
}

}  // namespace
}  // namespace codar::ir

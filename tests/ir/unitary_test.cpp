#include "codar/ir/unitary.hpp"

#include <gtest/gtest.h>

#include <numbers>
#include <vector>

namespace codar::ir {
namespace {

using std::numbers::pi;

/// All unitary gate kinds with representative parameters.
std::vector<Gate> representative_gates() {
  return {
      Gate::i(0),
      Gate::x(0),
      Gate::y(0),
      Gate::z(0),
      Gate::h(0),
      Gate::s(0),
      Gate::sdg(0),
      Gate::t(0),
      Gate::tdg(0),
      Gate::sx(0),
      Gate::rx(0, 0.7),
      Gate::ry(0, 1.1),
      Gate::rz(0, -0.4),
      Gate::u1(0, 0.9),
      Gate::u2(0, 0.3, 1.2),
      Gate::u3(0, 0.5, 0.6, 0.7),
      Gate::cx(0, 1),
      Gate::cz(0, 1),
      Gate::cy(0, 1),
      Gate::ch(0, 1),
      Gate::crz(0, 1, 0.8),
      Gate::cu1(0, 1, 1.3),
      Gate::rzz(0, 1, 0.6),
      Gate::swap(0, 1),
      Gate::ccx(0, 1, 2),
  };
}

TEST(GateUnitary, EveryGateIsUnitary) {
  for (const Gate& g : representative_gates()) {
    const Matrix u = gate_unitary(g.kind(), g.params());
    EXPECT_TRUE(u.is_unitary()) << g.to_string();
    EXPECT_EQ(u.dim(), std::size_t{1} << g.num_qubits()) << g.to_string();
  }
}

TEST(GateUnitary, NonUnitaryKindsThrow) {
  EXPECT_THROW(gate_unitary(GateKind::kMeasure, {}), ContractViolation);
  EXPECT_THROW(gate_unitary(GateKind::kBarrier, {}), ContractViolation);
}

TEST(GateUnitary, PauliRelations) {
  const Matrix x = gate_unitary(GateKind::kX, {});
  const Matrix y = gate_unitary(GateKind::kY, {});
  const Matrix z = gate_unitary(GateKind::kZ, {});
  // XY = iZ.
  Matrix xy = x * y;
  Matrix iz(2);
  iz.at(0, 0) = Complex(0, 1);
  iz.at(1, 1) = Complex(0, -1);
  EXPECT_LT((xy - iz).max_abs(), 1e-12);
  // Z^2 = I.
  EXPECT_LT(((z * z) - Matrix::identity(2)).max_abs(), 1e-12);
}

TEST(GateUnitary, HadamardConjugatesXToZ) {
  const Matrix h = gate_unitary(GateKind::kH, {});
  const Matrix x = gate_unitary(GateKind::kX, {});
  const Matrix z = gate_unitary(GateKind::kZ, {});
  EXPECT_LT(((h * x * h) - z).max_abs(), 1e-12);
}

TEST(GateUnitary, SAndTAreZRoots) {
  const Matrix s = gate_unitary(GateKind::kS, {});
  const Matrix t = gate_unitary(GateKind::kT, {});
  const Matrix z = gate_unitary(GateKind::kZ, {});
  EXPECT_LT(((s * s) - z).max_abs(), 1e-12);
  EXPECT_LT(((t * t) - s).max_abs(), 1e-12);
}

TEST(GateUnitary, SxSquaredIsX) {
  const Matrix sx = gate_unitary(GateKind::kSX, {});
  const Matrix x = gate_unitary(GateKind::kX, {});
  EXPECT_LT(((sx * sx) - x).max_abs(), 1e-12);
}

TEST(GateUnitary, U3SubsumesRotations) {
  // u3(theta, -pi/2, pi/2) = rx(theta).
  const double theta = 0.93;
  const double p_rx[] = {theta};
  const double p_u3[] = {theta, -pi / 2.0, pi / 2.0};
  const Matrix rx = gate_unitary(GateKind::kRX, p_rx);
  const Matrix u3 = gate_unitary(GateKind::kU3, p_u3);
  EXPECT_LT((rx - u3).max_abs(), 1e-12);
}

TEST(GateUnitary, CxMapsBasisCorrectly) {
  // Local convention: control = bit 0, target = bit 1.
  const Matrix cx = gate_unitary(GateKind::kCX, {});
  // |c=1,t=0> (index 1) -> |c=1,t=1> (index 3).
  EXPECT_EQ(cx.at(3, 1), Complex(1.0));
  EXPECT_EQ(cx.at(1, 1), Complex(0.0));
  // |c=0,t=0> fixed.
  EXPECT_EQ(cx.at(0, 0), Complex(1.0));
}

TEST(GateUnitary, CcxFlipsOnlyWhenBothControlsSet) {
  const Matrix ccx = gate_unitary(GateKind::kCCX, {});
  // |c1=1,c2=1,t=0> = index 3 <-> index 7.
  EXPECT_EQ(ccx.at(7, 3), Complex(1.0));
  EXPECT_EQ(ccx.at(3, 7), Complex(1.0));
  EXPECT_EQ(ccx.at(5, 5), Complex(1.0));  // only one control set: identity
}

TEST(Kron, LowBitsAreFirstFactor) {
  const Matrix x = gate_unitary(GateKind::kX, {});
  const Matrix id = Matrix::identity(2);
  // kron(x, id): X acts on bit 0.
  const Matrix m = kron(x, id);
  EXPECT_EQ(m.at(1, 0), Complex(1.0));  // |00> -> |01> (bit0 flip)
  EXPECT_EQ(m.at(3, 2), Complex(1.0));
}

TEST(Embed, SingleQubitInThreeQubitSpace) {
  const Qubit joint[] = {5, 7, 9};
  const Matrix m = embed(Gate::x(7), joint);
  EXPECT_EQ(m.dim(), 8u);
  // X on joint bit 1: |000> -> |010>.
  EXPECT_EQ(m.at(2, 0), Complex(1.0));
  EXPECT_EQ(m.at(0, 2), Complex(1.0));
  EXPECT_TRUE(m.is_unitary());
}

TEST(Embed, CxRespectsJointOrdering) {
  // Joint [3, 8]: qubit 3 = bit 0, qubit 8 = bit 1. CX control 8, target 3.
  const Qubit joint[] = {3, 8};
  const Matrix m = embed(Gate::cx(8, 3), joint);
  // control = bit 1, target = bit 0: |10> (bit1 set, index 2) -> |11>.
  EXPECT_EQ(m.at(3, 2), Complex(1.0));
  EXPECT_EQ(m.at(1, 1), Complex(1.0));  // control clear: fixed
}

TEST(Embed, RequiresGateQubitsInJointSet) {
  const Qubit joint[] = {0, 1};
  EXPECT_THROW(embed(Gate::x(5), joint), ContractViolation);
}

TEST(UnitariesCommute, KnownPairs) {
  // Disjoint gates commute.
  EXPECT_TRUE(unitaries_commute(Gate::x(0), Gate::z(1)));
  // X and Z on the same qubit anticommute.
  EXPECT_FALSE(unitaries_commute(Gate::x(0), Gate::z(0)));
  // Diagonal gates commute.
  EXPECT_TRUE(unitaries_commute(Gate::t(0), Gate::rz(0, 0.3)));
  // CX sharing control commute.
  EXPECT_TRUE(unitaries_commute(Gate::cx(0, 1), Gate::cx(0, 2)));
  // CX sharing target commute.
  EXPECT_TRUE(unitaries_commute(Gate::cx(0, 2), Gate::cx(1, 2)));
  // Control-meets-target does not commute.
  EXPECT_FALSE(unitaries_commute(Gate::cx(0, 1), Gate::cx(1, 2)));
  // Z on control of CX commutes; on target does not.
  EXPECT_TRUE(unitaries_commute(Gate::z(0), Gate::cx(0, 1)));
  EXPECT_FALSE(unitaries_commute(Gate::z(1), Gate::cx(0, 1)));
  // X on target of CX commutes; on control does not.
  EXPECT_TRUE(unitaries_commute(Gate::x(1), Gate::cx(0, 1)));
  EXPECT_FALSE(unitaries_commute(Gate::x(0), Gate::cx(0, 1)));
}

TEST(Matrix, DaggerAndNorm) {
  Matrix m(2);
  m.at(0, 1) = Complex(0, 1);
  const Matrix d = m.dagger();
  EXPECT_EQ(d.at(1, 0), Complex(0, -1));
  EXPECT_DOUBLE_EQ(m.max_abs(), 1.0);
}

TEST(Matrix, MultiplyDimensionMismatchThrows) {
  Matrix a(2), b(4);
  EXPECT_THROW(a * b, ContractViolation);
}

}  // namespace
}  // namespace codar::ir

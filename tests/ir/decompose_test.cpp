#include "codar/ir/decompose.hpp"

#include <gtest/gtest.h>

#include "codar/sim/statevector.hpp"

namespace codar::ir {
namespace {

/// Exact state equality between two circuits over the same register.
void expect_equivalent(const Circuit& a, const Circuit& b, double tol = 1e-9) {
  ASSERT_EQ(a.num_qubits(), b.num_qubits());
  sim::Statevector sa(a.num_qubits());
  sa.apply(a);
  sim::Statevector sb(b.num_qubits());
  sb.apply(b);
  for (std::size_t i = 0; i < sa.dim(); ++i) {
    EXPECT_NEAR(std::abs(sa.amp(i) - sb.amp(i)), 0.0, tol) << "basis " << i;
  }
}

TEST(DecomposeToffoli, PreservesSemanticsOnAllBasisInputs) {
  for (int input = 0; input < 8; ++input) {
    Circuit c(3);
    for (Qubit q = 0; q < 3; ++q) {
      if ((input >> q) & 1) c.x(q);
    }
    c.ccx(0, 1, 2);
    const Circuit lowered = decompose_toffoli(c);
    expect_equivalent(c, lowered);
  }
}

TEST(DecomposeToffoli, PreservesSemanticsInSuperposition) {
  Circuit c(3);
  c.h(0);
  c.h(1);
  c.t(2);
  c.ccx(0, 1, 2);
  c.h(2);
  expect_equivalent(c, decompose_toffoli(c));
}

TEST(DecomposeToffoli, RemovesAllToffolis) {
  Circuit c(4);
  c.ccx(0, 1, 2);
  c.ccx(1, 2, 3);
  const Circuit lowered = decompose_toffoli(c);
  EXPECT_TRUE(is_two_qubit_lowered(lowered));
  for (const Gate& g : lowered.gates()) {
    EXPECT_NE(g.kind(), GateKind::kCCX);
  }
}

TEST(DecomposeToffoli, LeavesOtherGatesUntouched) {
  Circuit c(3);
  c.h(0);
  c.cx(0, 1);
  c.measure(2);
  const Circuit lowered = decompose_toffoli(c);
  ASSERT_EQ(lowered.size(), 3u);
  EXPECT_EQ(lowered.gate(0).kind(), GateKind::kH);
  EXPECT_EQ(lowered.gate(2).kind(), GateKind::kMeasure);
}

TEST(DecomposeSwaps, ThreeCxEquivalence) {
  Circuit c(2);
  c.h(0);
  c.t(1);
  c.swap(0, 1);
  const Circuit lowered = decompose_swaps(c);
  EXPECT_EQ(lowered.swap_count(), 0u);
  EXPECT_EQ(lowered.size(), 5u);  // h, t, 3x cx
  expect_equivalent(c, lowered);
}

TEST(IsTwoQubitLowered, DetectsToffoli) {
  Circuit c(3);
  c.cx(0, 1);
  EXPECT_TRUE(is_two_qubit_lowered(c));
  c.ccx(0, 1, 2);
  EXPECT_FALSE(is_two_qubit_lowered(c));
}

TEST(IsTwoQubitLowered, IgnoresWideBarriers) {
  Circuit c(3);
  const Qubit qs[] = {0, 1, 2};
  c.barrier(qs);
  EXPECT_TRUE(is_two_qubit_lowered(c));
}

}  // namespace
}  // namespace codar::ir

// maQAM multi-architecture demo: one workload routed under the three
// technology duration profiles of Table I (superconducting, ion trap,
// neutral atom) on the same coupling graph, with ASCII timelines showing
// how the gate-duration map reshapes the schedule CODAR builds.
//
//   $ ./technology_comparison

#include <iostream>

#include "codar/arch/device.hpp"
#include "codar/arch/extra_devices.hpp"
#include "codar/core/codar_router.hpp"
#include "codar/schedule/timeline.hpp"
#include "codar/workloads/generators.hpp"

int main() {
  using namespace codar;

  const ir::Circuit circuit = workloads::qft(6);
  std::cout << "workload: " << circuit.name() << " (" << circuit.size()
            << " gates)\ncoupling: 3x3 lattice\n";

  const std::pair<const char*, arch::DurationMap> technologies[] = {
      {"superconducting (1q=1, 2q=2, SWAP=6)",
       arch::DurationMap::superconducting()},
      {"ion trap (1q=1, 2q=12, SWAP=36)", arch::DurationMap::ion_trap()},
      {"neutral atom (1q=2, 2q=1, SWAP=3)",
       arch::DurationMap::neutral_atom()},
  };

  for (const auto& [name, durations] : technologies) {
    const arch::Device device = arch::grid(3, 3, durations);
    const core::CodarRouter router(device);
    const core::RoutingResult result = router.route(circuit);
    const schedule::TimelineStats stats =
        schedule::analyze_timeline(result.circuit, durations);

    std::cout << "\n=== " << name << " ===\n";
    std::cout << "weighted depth " << stats.makespan << " cycles, "
              << result.stats.swaps_inserted << " SWAPs, mean parallelism "
              << stats.mean_parallelism << ", qubit utilization "
              << stats.qubit_utilization << "\n";
    std::cout << schedule::render_timeline(result.circuit, durations, 100);
  }

  std::cout << "\nAll-to-all ion trap for contrast (routing disappears, the "
               "slow 2-qubit gates dominate):\n";
  const arch::Device trap = arch::ion_trap_all_to_all(6);
  const core::RoutingResult result = core::CodarRouter(trap).route(circuit);
  std::cout << "SWAPs: " << result.stats.swaps_inserted
            << ", weighted depth: "
            << schedule::weighted_depth(result.circuit, trap.durations)
            << " cycles\n";
  return 0;
}

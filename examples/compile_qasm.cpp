// OpenQASM compiler driver: parse a .qasm file, lower Toffolis, route onto
// a named architecture with CODAR (or SABRE), and print the routed QASM
// with compilation statistics.
//
//   $ ./compile_qasm [file.qasm] [q16|q20|6x6|sycamore|q5] [--sabre]
//                     [--no-opt]
//
// With no arguments a built-in sample program is compiled onto IBM Q20.
// A peephole cleanup (cancellations + rotation fusion) runs before
// routing unless --no-opt is given.

#include <iostream>
#include <string>

#include "codar/arch/device.hpp"
#include "codar/core/codar_router.hpp"
#include "codar/core/verify.hpp"
#include "codar/ir/decompose.hpp"
#include "codar/ir/peephole.hpp"
#include "codar/qasm/parser.hpp"
#include "codar/qasm/writer.hpp"
#include "codar/sabre/sabre_router.hpp"
#include "codar/schedule/scheduler.hpp"

namespace {

constexpr const char* kSample = R"(OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
creg c[5];
gate majority a,b,d { cx d,b; cx d,a; ccx a,b,d; }
gate unmaj a,b,d { ccx a,b,d; cx d,a; cx a,b; }
// 2-bit Cuccaro adder written with user-defined gates.
x q[1];
x q[3];
majority q[0],q[1],q[2];
majority q[2],q[3],q[4];
cx q[4],q[0];
unmaj q[2],q[3],q[4];
unmaj q[0],q[1],q[2];
measure q -> c;
)";

codar::arch::Device pick_device(const std::string& name) {
  using namespace codar::arch;
  if (name == "q16") return ibm_q16();
  if (name == "q20") return ibm_q20_tokyo();
  if (name == "6x6") return enfield_6x6();
  if (name == "sycamore") return google_sycamore54();
  if (name == "q5") return ibm_q5_yorktown();
  throw std::runtime_error("unknown device '" + name +
                           "' (try q16, q20, 6x6, sycamore, q5)");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace codar;
  try {
    std::string device_name = "q20";
    bool use_sabre = false;
    bool optimize = true;
    std::string path;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--sabre") {
        use_sabre = true;
      } else if (arg == "--no-opt") {
        optimize = false;
      } else if (arg == "q16" || arg == "q20" || arg == "6x6" ||
                 arg == "sycamore" || arg == "q5") {
        device_name = arg;
      } else {
        path = arg;
      }
    }

    const ir::Circuit parsed =
        path.empty() ? qasm::parse(kSample, "sample_adder")
                     : qasm::parse_file(path);
    ir::Circuit lowered = ir::decompose_toffoli(parsed);
    ir::PeepholeStats peephole_stats;
    if (optimize) {
      lowered = ir::peephole_optimize(lowered, &peephole_stats);
    }
    const arch::Device device = pick_device(device_name);
    if (lowered.num_qubits() > device.graph.num_qubits()) {
      std::cerr << "circuit needs " << lowered.num_qubits()
                << " qubits but " << device.name << " has only "
                << device.graph.num_qubits() << "\n";
      return 1;
    }

    const sabre::SabreRouter sabre(device);
    const layout::Layout initial = sabre.initial_mapping(lowered, 2, 17);
    const core::RoutingResult result =
        use_sabre ? sabre.route(lowered, initial)
                  : core::CodarRouter(device).route(lowered, initial);

    const core::VerifyOutcome check =
        core::verify_routing(lowered, result, device.graph);
    if (!check.valid) {
      std::cerr << "internal error, routing failed verification: "
                << check.reason << "\n";
      return 1;
    }

    std::cerr << "router:          " << (use_sabre ? "SABRE" : "CODAR")
              << "\n"
              << "device:          " << device.name << "\n"
              << "input gates:     " << parsed.size() << " ("
              << lowered.size() << " after lowering"
              << (optimize ? " + peephole" : "") << ")\n"
              << "peephole:        " << peephole_stats.gates_removed
              << " removed, " << peephole_stats.gates_fused << " fused\n"
              << "SWAPs inserted:  " << result.stats.swaps_inserted << "\n"
              << "weighted depth:  "
              << schedule::weighted_depth(result.circuit, device.durations)
              << " cycles\n";
    std::cout << qasm::to_qasm(result.circuit);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

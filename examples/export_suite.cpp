// Suite export tool: writes the full 71-benchmark evaluation suite as
// OpenQASM 2.0 files, so the workloads can be fed to external compilers
// (Qiskit, tket, ...) for independent comparison.
//
//   $ ./export_suite [output_dir]    (default ./suite_qasm)

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string_view>

#include "codar/qasm/writer.hpp"
#include "codar/workloads/suite.hpp"

int main(int argc, char** argv) {
  using namespace codar;
  if (argc > 1 && argv[1][0] == '-') {
    std::cerr << "usage: export_suite [output_dir]   (default ./suite_qasm)\n";
    return std::string_view(argv[1]) == "-h" ||
                   std::string_view(argv[1]) == "--help"
               ? 0
               : 1;
  }
  const std::filesystem::path dir =
      argc > 1 ? std::filesystem::path(argv[1]) : "suite_qasm";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::cerr << "cannot create " << dir << ": " << ec.message() << "\n";
    return 1;
  }

  std::size_t files = 0;
  std::size_t total_gates = 0;
  for (const workloads::BenchmarkSpec& spec : workloads::benchmark_suite()) {
    const std::filesystem::path path = dir / (spec.name + ".qasm");
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write " << path << "\n";
      return 1;
    }
    out << "// " << spec.name << ": " << spec.circuit.num_qubits()
        << " qubits, " << spec.circuit.size() << " gates\n";
    out << qasm::to_qasm(spec.circuit);
    ++files;
    total_gates += spec.circuit.size();
  }
  std::cout << "wrote " << files << " benchmarks (" << total_gates
            << " gates total) to " << dir << "/\n";
  return 0;
}

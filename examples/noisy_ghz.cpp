// Noise-aware scenario: prepare a GHZ state on a 3x3 lattice, route it,
// and simulate the routed circuit under dephasing noise with both the
// exact density-matrix backend and Monte-Carlo trajectories — showing why
// shorter schedules keep fidelity (the paper's Fig. 9 mechanism).
//
//   $ ./noisy_ghz

#include <iostream>

#include "codar/arch/device.hpp"
#include "codar/core/codar_router.hpp"
#include "codar/sabre/sabre_router.hpp"
#include "codar/schedule/scheduler.hpp"
#include "codar/sim/noisy_simulator.hpp"
#include "codar/workloads/generators.hpp"

int main() {
  using namespace codar;

  const arch::Device device = arch::grid(3, 3);
  const int n_phys = device.graph.num_qubits();
  // A GHZ star: every CX fans out from qubit 0, so routing matters even
  // for this textbook state.
  ir::Circuit circuit(6, "ghz_star6");
  circuit.h(0);
  for (ir::Qubit q = 1; q < 6; ++q) circuit.cx(0, q);

  const sabre::SabreRouter sabre(device);
  const layout::Layout initial = sabre.initial_mapping(circuit, 2, 11);
  const core::RoutingResult r_codar =
      core::CodarRouter(device).route(circuit, initial);
  const core::RoutingResult r_sabre = sabre.route(circuit, initial);

  const sim::NoiseParams noise = sim::NoiseParams::dephasing_dominant(300.0);

  std::cout << "device: " << device.name << ", noise: dephasing T2 = 300 "
            << "cycles\n\n";
  for (const auto& [name, result] :
       {std::pair<const char*, const core::RoutingResult&>{"CODAR", r_codar},
        {"SABRE", r_sabre}}) {
    const auto depth =
        schedule::weighted_depth(result.circuit, device.durations);
    const double f_exact = sim::noisy_fidelity_density(
        result.circuit, n_phys, device.durations, noise);
    const double f_mc = sim::noisy_fidelity_trajectories(
        result.circuit, n_phys, device.durations, noise, 400, 2024);
    std::cout << name << ": weighted depth " << depth << ", swaps "
              << result.stats.swaps_inserted << "\n"
              << "  fidelity (density matrix, exact):     " << f_exact << "\n"
              << "  fidelity (400 MC trajectories):       " << f_mc << "\n";
  }
  std::cout << "\nThe shorter schedule accumulates less dephasing: fidelity "
               "tracks weighted depth, which is what CODAR minimizes.\n";
  return 0;
}

// Quickstart: build a circuit with the IR API, route it onto IBM Q20 Tokyo
// with CODAR, and inspect the result.
//
//   $ ./quickstart

#include <iostream>

#include "codar/arch/device.hpp"
#include "codar/core/codar_router.hpp"
#include "codar/core/verify.hpp"
#include "codar/qasm/writer.hpp"
#include "codar/schedule/scheduler.hpp"

int main() {
  using namespace codar;

  // 1. Build a logical circuit: a 6-qubit GHZ preparation with a twist —
  //    the entangling CXs fan out from qubit 0, so most of them are not
  //    nearest-neighbour on real hardware.
  ir::Circuit circuit(6, "ghz_star");
  circuit.h(0);
  for (ir::Qubit q = 1; q < 6; ++q) circuit.cx(0, q);
  for (ir::Qubit q = 0; q < 6; ++q) circuit.measure(q);

  // 2. Pick a device model (maQAM static structure: coupling graph +
  //    gate-duration map).
  const arch::Device device = arch::ibm_q20_tokyo();
  std::cout << "Device: " << device.name << " ("
            << device.graph.num_qubits() << " qubits, "
            << device.graph.num_edges() << " couplers)\n";

  // 3. Route with CODAR (context-sensitive, duration-aware).
  const core::CodarRouter router(device);
  const core::RoutingResult result = router.route(circuit);

  // 4. Verify and report.
  const core::VerifyOutcome check =
      core::verify_routing(circuit, result, device.graph);
  std::cout << "verification: " << (check.valid ? "OK" : check.reason)
            << "\n";
  std::cout << "SWAPs inserted: " << result.stats.swaps_inserted << "\n";
  std::cout << "weighted depth: "
            << schedule::weighted_depth(result.circuit, device.durations)
            << " cycles (original lower bound: "
            << schedule::weighted_depth(circuit, device.durations)
            << ")\n\n";

  std::cout << "Routed circuit (physical qubits):\n"
            << qasm::to_qasm(result.circuit);

  std::cout << "\nFinal layout (logical -> physical): ";
  for (ir::Qubit q = 0; q < circuit.num_qubits(); ++q) {
    std::cout << "q" << q << "->Q" << result.final.physical(q) << " ";
  }
  std::cout << "\n";
  return 0;
}

// Large-device scenario: map a 20-qubit QFT onto the 54-qubit Google
// Sycamore model with CODAR and SABRE, comparing weighted depth, SWAP
// count and wall-clock compile time. The QFT's controlled-phase ladder is
// the commutativity-detection showcase: every CU1 layer is mutually
// commuting, so CODAR's CF set exposes far more routable gates than the
// DAG front layer.
//
//   $ ./sycamore_qft [n_qubits]   (default 20)

#include <chrono>
#include <iostream>

#include "codar/arch/device.hpp"
#include "codar/core/codar_router.hpp"
#include "codar/core/verify.hpp"
#include "codar/sabre/sabre_router.hpp"
#include "codar/schedule/scheduler.hpp"
#include "codar/workloads/generators.hpp"

int main(int argc, char** argv) {
  using namespace codar;
  using Clock = std::chrono::steady_clock;

  const int n = argc > 1 ? std::atoi(argv[1]) : 20;
  const arch::Device device = arch::google_sycamore54();
  if (n < 2 || n > device.graph.num_qubits()) {
    std::cerr << "qubit count must be in [2, 54]\n";
    return 1;
  }

  const ir::Circuit circuit = workloads::qft(n);
  std::cout << "workload: QFT-" << n << " (" << circuit.size()
            << " gates)\ndevice:   " << device.name << "\n\n";

  const sabre::SabreRouter sabre(device);
  const auto t0 = Clock::now();
  const layout::Layout initial = sabre.initial_mapping(circuit, 2, 17);
  const auto t1 = Clock::now();

  const core::RoutingResult r_codar =
      core::CodarRouter(device).route(circuit, initial);
  const auto t2 = Clock::now();
  const core::RoutingResult r_sabre = sabre.route(circuit, initial);
  const auto t3 = Clock::now();

  for (const auto* r : {&r_codar, &r_sabre}) {
    const auto check = core::verify_routing(circuit, *r, device.graph);
    if (!check.valid) {
      std::cerr << "verification failed: " << check.reason << "\n";
      return 1;
    }
  }

  const auto ms = [](auto d) {
    return std::chrono::duration_cast<std::chrono::milliseconds>(d).count();
  };
  const auto d_codar =
      schedule::weighted_depth(r_codar.circuit, device.durations);
  const auto d_sabre =
      schedule::weighted_depth(r_sabre.circuit, device.durations);

  std::cout << "initial mapping (shared, SABRE reverse traversal): "
            << ms(t1 - t0) << " ms\n\n";
  std::cout << "            weighted depth   SWAPs   compile time\n";
  std::cout << "  CODAR     " << d_codar << "\t     " << r_codar.stats.swaps_inserted
            << "\t     " << ms(t2 - t1) << " ms\n";
  std::cout << "  SABRE     " << d_sabre << "\t     " << r_sabre.stats.swaps_inserted
            << "\t     " << ms(t3 - t2) << " ms\n\n";
  std::cout << "speedup (SABRE depth / CODAR depth): "
            << static_cast<double>(d_sabre) / static_cast<double>(d_codar)
            << "\n";
  return 0;
}

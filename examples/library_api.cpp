// Using codar as a library through the umbrella header and the unified
// pipeline API: pick a router and an initial mapping by name, run the
// full compilation pipeline, and enumerate what else is registered.
// This is the example the README's "use codar as a library" snippet is
// drawn from.
//
//   $ ./library_api

#include <iostream>

#include "codar/codar.hpp"

int main() {
  using namespace codar;

  // A 6-qubit QFT from the built-in workload generators.
  const ir::Circuit circuit = workloads::qft(6);
  const arch::Device device = arch::ibm_q20_tokyo();

  // The spec names passes by their registry keys; every knob that can
  // change a routed result lives here too.
  pipeline::RoutingSpec spec;
  spec.router = "codar";    // or "sabre", "astar", or your own pass
  spec.mapping = "sabre";   // or "identity", "greedy"

  // The pipeline runs: lower -> initial mapping -> route -> verify.
  const pipeline::Pipeline pipe(device, spec);
  const pipeline::RouteReport report = pipe.run(circuit, /*keep_qasm=*/true);
  if (!report.ok()) {
    std::cerr << "routing failed: " << report.error << "\n";
    return 1;
  }
  std::cout << circuit.name() << " on " << device.name << " via "
            << pipe.router().name() << " (" << pipe.router().describe_config()
            << ")\n  swaps=" << report.swaps
            << " weighted depth " << report.depth_in << " -> "
            << report.depth_out << ", verified\n\n"
            << "routed program (keep_qasm=true):\n"
            << report.routed_qasm << "\n";

  // Everything selectable by name, straight from the registries — the
  // same lists `codar --list-routers` / `--list-mappings` print.
  std::cout << "registered routers:\n";
  for (const pipeline::RouterEntry& e :
       pipeline::RouterRegistry::instance().entries()) {
    std::cout << "  " << e.name << " — " << e.description << "\n";
  }
  std::cout << "registered initial mappings:\n";
  for (const pipeline::MappingEntry& e :
       pipeline::MappingRegistry::instance().entries()) {
    std::cout << "  " << e.name << " — " << e.description << "\n";
  }
  return 0;
}

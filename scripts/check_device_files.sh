#!/usr/bin/env bash
# Validates the shipped JSON device descriptions (examples/devices/*.json):
#
#   1. every file loads through the codar CLI (`--device file:...`),
#   2. its content fingerprint is deterministic (two independent processes
#      render byte-identical --describe-device output),
#   3. the uncalibrated preset clones fingerprint identically to their
#      built-in presets (so the files can never drift from the code),
#   4. a calibrated file actually reports calibrated: true and routes a
#      small circuit end-to-end with verification on.
#
# Usage: scripts/check_device_files.sh [path-to-codar-binary]
set -euo pipefail

cd "$(dirname "$0")/.."
CODAR="${1:-./build/codar}"

if [ ! -x "$CODAR" ]; then
  echo "error: codar binary not found at $CODAR (build first)" >&2
  exit 2
fi

fail=0

describe() {
  "$CODAR" --describe-device "$1"
}

shopt -s nullglob
files=(examples/devices/*.json)
if [ "${#files[@]}" -eq 0 ]; then
  echo "error: no device files under examples/devices/" >&2
  exit 2
fi

for f in "${files[@]}"; do
  a=$(describe "file:$f")
  b=$(describe "file:$f")
  if [ "$a" != "$b" ]; then
    echo "FAIL: $f fingerprints nondeterministically:" >&2
    echo "  $a" >&2
    echo "  $b" >&2
    fail=1
  else
    echo "ok: $f  $a"
  fi
done

# The preset clones must fingerprint identically to the built-in presets.
declare -A preset_of=(
  [examples/devices/q16.json]=q16
  [examples/devices/enfield_6x6.json]=enfield
  [examples/devices/tokyo.json]=tokyo
  [examples/devices/sycamore54.json]=sycamore
)
fp() { describe "$1" | sed 's/.*"fingerprint": "\([^"]*\)".*/\1/'; }
for f in "${!preset_of[@]}"; do
  preset="${preset_of[$f]}"
  if [ "$(fp "file:$f")" != "$(fp "$preset")" ]; then
    echo "FAIL: $f drifted from the built-in '$preset' preset" >&2
    echo "  file:   $(describe "file:$f")" >&2
    echo "  preset: $(describe "$preset")" >&2
    fail=1
  fi
done

# The calibrated example must carry calibration and route end-to-end.
calibrated=examples/devices/tokyo_calibrated.json
case "$(describe "file:$calibrated")" in
  *'"calibrated": true'*) ;;
  *) echo "FAIL: $calibrated does not report calibrated: true" >&2; fail=1 ;;
esac
qasm=$(mktemp --suffix=.qasm)
trap 'rm -f "$qasm"' EXIT
printf 'OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[6];\nh q[0];\ncx q[0],q[3];\ncx q[3],q[5];\ncx q[0],q[5];\n' > "$qasm"
stats=$("$CODAR" --device "file:$calibrated" "$qasm" 2>&1 >/dev/null)
case "$stats" in
  *'"verified": true'*) echo "ok: $calibrated routes and verifies" ;;
  *) echo "FAIL: $calibrated did not route+verify: $stats" >&2; fail=1 ;;
esac

# The noisy example must carry calibration *and* finite coherence, and
# route end-to-end under both codar and the fidelity-aware codar-fid.
noisy=examples/devices/tokyo-noisy.json
case "$(describe "file:$noisy")" in
  *'"calibrated": true'*'"coherence": true'*) ;;
  *) echo "FAIL: $noisy does not report calibrated+coherence: true" >&2
     fail=1 ;;
esac
for router in codar codar-fid; do
  stats=$("$CODAR" --device "file:$noisy" --router "$router" "$qasm" \
            2>&1 >/dev/null)
  case "$stats" in
    *'"verified": true'*)
      echo "ok: $noisy routes and verifies under $router" ;;
    *) echo "FAIL: $noisy did not route+verify under $router: $stats" >&2
       fail=1 ;;
  esac
done

if [ "$fail" -ne 0 ]; then
  echo "device file check FAILED" >&2
  exit 1
fi
echo "all device files load, fingerprint deterministically, and match their presets"

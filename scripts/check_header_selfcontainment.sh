#!/usr/bin/env bash
# Header self-containment check: compiles every public header under
# src/*/include (and the src/include umbrella) standalone, so a header
# that silently leans on its includer's context fails CI instead of the
# next consumer. Usage:
#
#   scripts/check_header_selfcontainment.sh [compiler]
#
# The compiler defaults to $CXX, then g++. Exit 0 = every header compiles
# on its own; 1 = at least one is not self-contained.
set -u
cd "$(dirname "$0")/.."

CXX="${1:-${CXX:-g++}}"

# Match the project warning wall (CMakeLists.txt codar_warnings): clang
# additionally checks the codar/common/thread_annotations.hpp capability
# annotations, so an annotation that only compiles in context fails here.
extra_warnings=""
if "$CXX" --version 2>/dev/null | grep -qi clang; then
  extra_warnings="-Wthread-safety"
fi

includes=()
for dir in src/*/include src/include; do
  [ -d "$dir" ] && includes+=("-I$dir")
done

probe="$(mktemp --suffix=.cpp)"
trap 'rm -f "$probe"' EXIT

status=0
checked=0
while IFS= read -r header; do
  checked=$((checked + 1))
  # Compile a one-line TU including the header (not the header itself, so
  # `#pragma once` is not "in main file") with the project's warning set.
  printf '#include "%s"\n' "$header" > "$probe"
  if ! "$CXX" -std=c++20 -fsyntax-only -Wall -Wextra -Wpedantic -Wshadow \
      $extra_warnings -Werror -I. "${includes[@]}" "$probe"; then
    echo "not self-contained: $header" >&2
    status=1
  fi
done < <(find src/*/include src/include -name '*.hpp' | sort)

if [ "$status" -eq 0 ]; then
  echo "OK: $checked public headers are self-contained ($CXX)"
else
  echo "FAIL: some of the $checked public headers are not self-contained" >&2
fi
exit "$status"

#!/usr/bin/env python3
"""Unit tests for check_bench_regression.py — the gate every bench lane
funnels through. Covers: clean pass, gated-field drift, benchmark-set
mismatch, custom vs default gated_fields, malformed inputs (exit 2), and
the --allow-missing-baseline bootstrap path.

Run directly (python3 scripts/test_check_bench_regression.py) or via the
ctest entry `check_bench_regression_py`.
"""

import contextlib
import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import check_bench_regression as gate  # noqa: E402


def bench_doc(rows, gated_fields=None, total_wall_ms=None):
    doc = {"results": rows}
    if gated_fields is not None:
        doc["gated_fields"] = gated_fields
    if total_wall_ms is not None:
        doc["summary"] = {"total_wall_ms": total_wall_ms}
    return doc


class GateHarness(unittest.TestCase):
    """Runs gate.main() against JSON docs written to a temp directory."""

    def setUp(self):
        self._dir = tempfile.TemporaryDirectory(prefix="codar_gate_test_")
        self.addCleanup(self._dir.cleanup)

    def write(self, name, doc):
        path = os.path.join(self._dir.name, name)
        with open(path, "w") as f:
            if isinstance(doc, str):
                f.write(doc)  # raw bytes for malformed-input cases
            else:
                json.dump(doc, f)
        return path

    def missing(self, name):
        return os.path.join(self._dir.name, name)

    def run_gate(self, *argv):
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
            try:
                code = gate.main(["check_bench_regression.py", *argv])
            except SystemExit as e:  # load() exits directly on bad input
                code = e.code
        return code, out.getvalue(), err.getvalue()


class CleanRuns(GateHarness):
    def test_identical_docs_pass(self):
        rows = [{"name": "a", "swaps": 3, "makespan": 70, "cycles": 9}]
        base = self.write("base.json", bench_doc(rows))
        cand = self.write("cand.json", bench_doc(rows))
        code, out, _ = self.run_gate(base, cand)
        self.assertEqual(code, 0)
        self.assertIn("no drift", out)

    def test_ungated_fields_may_differ(self):
        base = self.write("base.json", bench_doc(
            [{"name": "a", "swaps": 3, "makespan": 70, "cycles": 9,
              "wall_ms": 10.0}], total_wall_ms=100.0))
        cand = self.write("cand.json", bench_doc(
            [{"name": "a", "swaps": 3, "makespan": 70, "cycles": 9,
              "wall_ms": 99.0}], total_wall_ms=900.0))
        code, out, _ = self.run_gate(base, cand)
        self.assertEqual(code, 0)
        self.assertIn("informational", out)  # wall time printed, not gating

    def test_multiple_pairs_in_one_invocation(self):
        rows = [{"name": "a", "swaps": 1, "makespan": 2, "cycles": 3}]
        b1 = self.write("b1.json", bench_doc(rows))
        c1 = self.write("c1.json", bench_doc(rows))
        b2 = self.write("b2.json", bench_doc(rows))
        c2 = self.write("c2.json", bench_doc(rows))
        code, out, _ = self.run_gate(b1, c1, b2, c2)
        self.assertEqual(code, 0)
        self.assertIn("2 pair(s)", out)


class DriftDetection(GateHarness):
    def test_default_gated_trio_drift_fails(self):
        for field in ("swaps", "makespan", "cycles"):
            row = {"name": "a", "swaps": 3, "makespan": 70, "cycles": 9}
            drifted = dict(row, **{field: row[field] + 1})
            base = self.write(f"base_{field}.json", bench_doc([row]))
            cand = self.write(f"cand_{field}.json", bench_doc([drifted]))
            code, out, _ = self.run_gate(base, cand)
            self.assertEqual(code, 1, field)
            self.assertIn("DRIFT", out)
            self.assertIn(field, out)

    def test_custom_gated_fields_override_the_default(self):
        # With gated_fields = ["disk_hits"], swaps drift is ignored but
        # disk_hits drift fails — the serve-bench warm-start contract.
        base = self.write("base.json", bench_doc(
            [{"name": "warm", "swaps": 3, "disk_hits": 121}],
            gated_fields=["disk_hits"]))
        cand_ok = self.write("cand_ok.json", bench_doc(
            [{"name": "warm", "swaps": 99, "disk_hits": 121}]))
        code, _, _ = self.run_gate(base, cand_ok)
        self.assertEqual(code, 0)

        cand_bad = self.write("cand_bad.json", bench_doc(
            [{"name": "warm", "swaps": 3, "disk_hits": 120}]))
        code, out, _ = self.run_gate(base, cand_bad)
        self.assertEqual(code, 1)
        self.assertIn("disk_hits 121 -> 120", out)

    def test_missing_gated_field_in_candidate_is_drift(self):
        base = self.write("base.json", bench_doc(
            [{"name": "a", "swaps": 3, "makespan": 70, "cycles": 9}]))
        cand = self.write("cand.json", bench_doc(
            [{"name": "a", "swaps": 3, "makespan": 70}]))
        code, out, _ = self.run_gate(base, cand)
        self.assertEqual(code, 1)
        self.assertIn("cycles 9 -> None", out)

    def test_benchmark_set_mismatch_fails_both_ways(self):
        base = self.write("base.json", bench_doc(
            [{"name": "a", "swaps": 1}, {"name": "b", "swaps": 2}]))
        cand = self.write("cand.json", bench_doc(
            [{"name": "a", "swaps": 1}, {"name": "c", "swaps": 3}]))
        code, out, _ = self.run_gate(base, cand)
        self.assertEqual(code, 1)
        self.assertIn("b: missing from candidate run", out)
        self.assertIn("c: not in baseline", out)


class MalformedInputs(GateHarness):
    def test_malformed_json_exits_2(self):
        base = self.write("base.json", "{not json")
        cand = self.write("cand.json", bench_doc([{"name": "a"}]))
        code, _, err = self.run_gate(base, cand)
        self.assertEqual(code, 2)
        self.assertIn("cannot read", err)

    def test_missing_results_array_exits_2(self):
        base = self.write("base.json", {"summary": {}})
        cand = self.write("cand.json", bench_doc([{"name": "a"}]))
        code, _, err = self.run_gate(base, cand)
        self.assertEqual(code, 2)
        self.assertIn("no 'results' array", err)

    def test_malformed_gated_fields_exits_2(self):
        for bad in ([], [7], "swaps", [None]):
            base = self.write("base.json", bench_doc(
                [{"name": "a", "swaps": 1}], gated_fields=bad))
            cand = self.write("cand.json", bench_doc(
                [{"name": "a", "swaps": 1}]))
            code, _, err = self.run_gate(base, cand)
            self.assertEqual(code, 2, repr(bad))
            self.assertIn("malformed 'gated_fields'", err)

    def test_bad_invocation_exits_2(self):
        base = self.write("base.json", bench_doc([{"name": "a"}]))
        for argv in ((), (base,), (base, base, base)):  # odd arg counts
            code, _, _ = self.run_gate(*argv)
            self.assertEqual(code, 2, argv)


class MissingBaseline(GateHarness):
    def test_missing_baseline_fails_by_default(self):
        cand = self.write("cand.json", bench_doc([{"name": "a"}]))
        code, _, err = self.run_gate(self.missing("base.json"), cand)
        self.assertEqual(code, 2)
        self.assertIn("cannot read", err)

    def test_allow_missing_baseline_bootstraps(self):
        cand = self.write("cand.json", bench_doc([{"name": "a"}]))
        code, out, _ = self.run_gate(
            "--allow-missing-baseline", self.missing("base.json"), cand)
        self.assertEqual(code, 0)
        self.assertIn("bootstrap", out)

    def test_allow_missing_still_gates_existing_baselines(self):
        # The flag skips ABSENT baselines only; a present-but-drifting
        # pair in the same invocation still fails.
        base = self.write("base.json", bench_doc([{"name": "a", "swaps": 1}]))
        cand = self.write("cand.json", bench_doc([{"name": "a", "swaps": 2}]))
        code, out, _ = self.run_gate(
            "--allow-missing-baseline",
            self.missing("new_base.json"), cand, base, cand)
        self.assertEqual(code, 1)
        self.assertIn("swaps 1 -> 2", out)

    def test_allow_missing_with_malformed_existing_baseline_still_fails(self):
        base = self.write("base.json", "][")
        cand = self.write("cand.json", bench_doc([{"name": "a"}]))
        code, _, _ = self.run_gate("--allow-missing-baseline", base, cand)
        self.assertEqual(code, 2)


if __name__ == "__main__":
    unittest.main()

#!/usr/bin/env bash
# Runs the repo .clang-tidy wall over every first-party translation unit in
# a compile_commands.json. Gating in CI (the `tidy` job); usable locally:
#
#   scripts/run_clang_tidy.sh                 # lint src/ via ./build
#   scripts/run_clang_tidy.sh -p build-tidy   # a different build dir
#   scripts/run_clang_tidy.sh --fix           # apply suggested fixes
#   scripts/run_clang_tidy.sh src/service     # restrict to one subtree
#
# The gate covers src/ (the shipped library + binaries). tests/ and bench/
# compile with the same warning wall but are not tidy-gated — gtest macro
# expansions trip bugprone checks that are pure noise.
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir=build
fix=""
jobs="$(nproc 2>/dev/null || echo 2)"
paths=()

while [ $# -gt 0 ]; do
  case "$1" in
    -p) build_dir="$2"; shift 2 ;;
    --fix) fix="--fix"; shift ;;
    -j) jobs="$2"; shift 2 ;;
    -h|--help)
      sed -n '2,12p' "$0"; exit 0 ;;
    *) paths+=("$1"); shift ;;
  esac
done
[ ${#paths[@]} -gt 0 ] || paths=(src)

tidy="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$tidy" >/dev/null 2>&1; then
  echo "error: $tidy not found (set CLANG_TIDY or install clang-tidy)" >&2
  exit 2
fi

db="$build_dir/compile_commands.json"
if [ ! -f "$db" ]; then
  echo "error: $db not found — configure first:" >&2
  echo "  cmake -B $build_dir -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 2
fi

# First-party TUs under the requested paths, straight from the database so
# generated/out-of-tree files can never sneak in.
mapfile -t files < <(python3 - "$db" "${paths[@]}" <<'EOF'
import json, os, sys
db, roots = sys.argv[1], [os.path.abspath(p) for p in sys.argv[2:]]
seen = set()
for entry in json.load(open(db)):
    f = os.path.abspath(os.path.join(entry["directory"], entry["file"]))
    if any(f == r or f.startswith(r + os.sep) for r in roots) and f not in seen:
        seen.add(f)
        print(f)
EOF
)

if [ ${#files[@]} -eq 0 ]; then
  echo "error: no translation units under: ${paths[*]}" >&2
  exit 2
fi

echo "clang-tidy ($($tidy --version | head -n1 | sed 's/^ *//')) over ${#files[@]} TUs, -j$jobs"

# xargs fans the TUs out; any finding (WarningsAsErrors: '*') fails the
# whole run. --quiet keeps the output to actual findings. With --fix,
# serialize (-P1) so two TUs never rewrite one shared header concurrently.
[ -n "$fix" ] && jobs=1
printf '%s\n' "${files[@]}" |
  xargs -P "$jobs" -n 1 "$tidy" -p "$build_dir" --quiet $fix
echo "clang-tidy: clean"

#!/usr/bin/env python3
"""Bench regression gate: diff fresh bench runs against their committed
baselines and fail on any routing-quality drift.

Usage:
    check_bench_regression.py BASELINE.json CANDIDATE.json \
                              [BASELINE2.json CANDIDATE2.json ...]

Arguments are baseline/candidate pairs, so one invocation can gate both
BENCH_router.json (the 71-benchmark suite) and BENCH_scaling.json (the
large-device sweep). Routing quality (swaps, makespan, cycles per
benchmark) is deterministic, so ANY difference is a regression (or an
improvement that must be committed deliberately by refreshing the
baseline). Wall time is machine-dependent and stays informational: it is
printed but never gates.

Exit codes: 0 = no drift, 1 = drift or benchmark set mismatch,
2 = bad invocation / unreadable input.
"""

import json
import sys

GATED_FIELDS = ("swaps", "makespan", "cycles")


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        print(f"error: {path} has no 'results' array", file=sys.stderr)
        sys.exit(2)
    return doc, {row["name"]: row for row in results}


def check_pair(baseline_path, candidate_path):
    """Returns (drift_lines, benchmark_count) for one baseline/candidate."""
    baseline_doc, baseline = load(baseline_path)
    candidate_doc, candidate = load(candidate_path)

    drift = []
    for name in sorted(baseline.keys() - candidate.keys()):
        drift.append(f"{name}: missing from candidate run")
    for name in sorted(candidate.keys() - baseline.keys()):
        drift.append(f"{name}: not in baseline (refresh {baseline_path}?)")

    for name in sorted(baseline.keys() & candidate.keys()):
        for field in GATED_FIELDS:
            want, got = baseline[name].get(field), candidate[name].get(field)
            if want != got:
                drift.append(f"{name}: {field} {want} -> {got}")

    base_ms = baseline_doc.get("summary", {}).get("total_wall_ms")
    cand_ms = candidate_doc.get("summary", {}).get("total_wall_ms")
    if base_ms and cand_ms:
        print(f"{baseline_path}: wall time (informational) baseline "
              f"{base_ms:.1f} ms, candidate {cand_ms:.1f} ms "
              f"({cand_ms / base_ms - 1.0:+.1%} vs baseline)")

    return drift, len(baseline)


def main(argv):
    if len(argv) < 3 or len(argv) % 2 != 1:
        print(__doc__, file=sys.stderr)
        return 2

    pairs = [(argv[i], argv[i + 1]) for i in range(1, len(argv), 2)]
    all_drift = []
    total_benchmarks = 0
    for baseline_path, candidate_path in pairs:
        drift, count = check_pair(baseline_path, candidate_path)
        all_drift.extend(f"{baseline_path}: {line}" for line in drift)
        total_benchmarks += count

    if all_drift:
        print(f"ROUTING-QUALITY DRIFT across {len(all_drift)} check(s):")
        for line in all_drift:
            print(f"  {line}")
        print("\nIf this change is intentional, regenerate the baseline(s) "
              "with the matching bench binary (bench_router_throughput / "
              "bench_runtime_scaling).")
        return 1

    print(f"OK: {total_benchmarks} benchmarks across {len(pairs)} pair(s), "
          f"{len(GATED_FIELDS)} gated fields each, no drift.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Bench regression gate: diff a fresh bench_router_throughput run against
the committed baseline and fail on any routing-quality drift.

Usage:
    check_bench_regression.py BASELINE.json CANDIDATE.json

Routing quality (swaps, makespan, cycles per benchmark) is deterministic,
so ANY difference is a regression (or an improvement that must be
committed deliberately by refreshing the baseline). Wall time is machine-
dependent and stays informational: it is printed but never gates.

Exit codes: 0 = no drift, 1 = drift or benchmark set mismatch,
2 = bad invocation / unreadable input.
"""

import json
import sys

GATED_FIELDS = ("swaps", "makespan", "cycles")


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        print(f"error: {path} has no 'results' array", file=sys.stderr)
        sys.exit(2)
    return doc, {row["name"]: row for row in results}


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    baseline_doc, baseline = load(argv[1])
    candidate_doc, candidate = load(argv[2])

    drift = []
    missing = sorted(baseline.keys() - candidate.keys())
    extra = sorted(candidate.keys() - baseline.keys())
    for name in missing:
        drift.append(f"{name}: missing from candidate run")
    for name in extra:
        drift.append(f"{name}: not in baseline (refresh {argv[1]}?)")

    for name in sorted(baseline.keys() & candidate.keys()):
        for field in GATED_FIELDS:
            want, got = baseline[name].get(field), candidate[name].get(field)
            if want != got:
                drift.append(f"{name}: {field} {want} -> {got}")

    base_ms = baseline_doc.get("summary", {}).get("total_wall_ms")
    cand_ms = candidate_doc.get("summary", {}).get("total_wall_ms")
    if base_ms and cand_ms:
        print(f"wall time (informational): baseline {base_ms:.1f} ms, "
              f"candidate {cand_ms:.1f} ms "
              f"({cand_ms / base_ms - 1.0:+.1%} vs baseline)")

    if drift:
        print(f"ROUTING-QUALITY DRIFT across {len(drift)} check(s):")
        for line in drift:
            print(f"  {line}")
        print(f"\nIf this change is intentional, regenerate the baseline:\n"
              f"  ./build/bench/bench_router_throughput {argv[1]}")
        return 1

    print(f"OK: {len(baseline)} benchmarks, "
          f"{len(GATED_FIELDS)} gated fields each, no drift.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

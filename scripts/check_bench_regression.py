#!/usr/bin/env python3
"""Bench regression gate: diff fresh bench runs against their committed
baselines and fail on any routing-quality drift.

Usage:
    check_bench_regression.py [--allow-missing-baseline] \
                              BASELINE.json CANDIDATE.json \
                              [BASELINE2.json CANDIDATE2.json ...]

Arguments are baseline/candidate pairs, so one invocation can gate
BENCH_router.json (the 71-benchmark suite), BENCH_scaling.json (the
large-device sweep) and BENCH_serve.json (the socket-serve load mixes).
Each baseline chooses its own gated fields via a top-level
"gated_fields" array; baselines without one gate the routing-quality
trio (swaps, makespan, cycles). Gated fields are deterministic by
construction, so ANY difference is a regression (or an improvement that
must be committed deliberately by refreshing the baseline). Wall time,
throughput and latency percentiles are machine-dependent and stay
informational: printed, never gating.

--allow-missing-baseline is the bootstrap mode for brand-new benches: a
pair whose baseline file does not exist yet warns and passes, so CI can
land the bench binary and its first committed baseline in one PR without
a chicken-and-egg failure. A baseline that exists but is unreadable or
malformed still fails hard.

Exit codes: 0 = no drift, 1 = drift or benchmark set mismatch,
2 = bad invocation / unreadable input.
"""

import json
import os
import sys

DEFAULT_GATED_FIELDS = ("swaps", "makespan", "cycles")


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        print(f"error: {path} has no 'results' array", file=sys.stderr)
        sys.exit(2)
    return doc, {row["name"]: row for row in results}


def gated_fields_of(doc, path):
    fields = doc.get("gated_fields", DEFAULT_GATED_FIELDS)
    if (not isinstance(fields, (list, tuple)) or not fields
            or not all(isinstance(f, str) for f in fields)):
        print(f"error: {path} has a malformed 'gated_fields' array",
              file=sys.stderr)
        sys.exit(2)
    return tuple(fields)


def check_pair(baseline_path, candidate_path):
    """Returns (drift_lines, benchmark_count, field_count) for one pair."""
    baseline_doc, baseline = load(baseline_path)
    candidate_doc, candidate = load(candidate_path)
    fields = gated_fields_of(baseline_doc, baseline_path)

    drift = []
    for name in sorted(baseline.keys() - candidate.keys()):
        drift.append(f"{name}: missing from candidate run")
    for name in sorted(candidate.keys() - baseline.keys()):
        drift.append(f"{name}: not in baseline (refresh {baseline_path}?)")

    for name in sorted(baseline.keys() & candidate.keys()):
        for field in fields:
            want, got = baseline[name].get(field), candidate[name].get(field)
            if want != got:
                drift.append(f"{name}: {field} {want} -> {got}")

    base_ms = baseline_doc.get("summary", {}).get("total_wall_ms")
    cand_ms = candidate_doc.get("summary", {}).get("total_wall_ms")
    if base_ms and cand_ms:
        print(f"{baseline_path}: wall time (informational) baseline "
              f"{base_ms:.1f} ms, candidate {cand_ms:.1f} ms "
              f"({cand_ms / base_ms - 1.0:+.1%} vs baseline)")

    return drift, len(baseline), len(fields)


def main(argv):
    args = list(argv[1:])
    allow_missing = "--allow-missing-baseline" in args
    args = [a for a in args if a != "--allow-missing-baseline"]
    if len(args) < 2 or len(args) % 2 != 0:
        print(__doc__, file=sys.stderr)
        return 2

    pairs = [(args[i], args[i + 1]) for i in range(0, len(args), 2)]
    all_drift = []
    total_benchmarks = 0
    checked_pairs = 0
    for baseline_path, candidate_path in pairs:
        if allow_missing and not os.path.exists(baseline_path):
            print(f"WARNING: no baseline at {baseline_path} — bootstrap "
                  f"pass. Commit the candidate ({candidate_path}) as the "
                  f"baseline to arm this gate.")
            continue
        drift, count, _ = check_pair(baseline_path, candidate_path)
        all_drift.extend(f"{baseline_path}: {line}" for line in drift)
        total_benchmarks += count
        checked_pairs += 1

    if all_drift:
        print(f"GATED-FIELD DRIFT across {len(all_drift)} check(s):")
        for line in all_drift:
            print(f"  {line}")
        print("\nIf this change is intentional, regenerate the baseline(s) "
              "with the matching bench binary (bench_router_throughput / "
              "bench_runtime_scaling / bench_serve_load).")
        return 1

    print(f"OK: {total_benchmarks} benchmarks across {checked_pairs} "
          f"pair(s), no drift in any gated field.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
